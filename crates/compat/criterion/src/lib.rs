//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach a crate registry, so this stub
//! implements the slice of the criterion API the workspace's benches
//! use — `bench_function`, `benchmark_group`/`bench_with_input`,
//! `iter`/`iter_batched`, the `criterion_group!`/`criterion_main!`
//! macros — with a simple but honest measurement loop:
//!
//! 1. warm up for [`WARM_UP`] per benchmark,
//! 2. auto-scale the batch size so one timing frame lasts ≳1 ms,
//! 3. collect timing frames for roughly the configured measurement
//!    window,
//! 4. report the median, min and max ns/iteration on stdout in a
//!    criterion-like format.
//!
//! There are no plots, no statistical regression and no saved
//! baselines. When invoked with `--test` (as `cargo test` does for
//! bench targets), every benchmark body runs exactly once so CI
//! exercises the code without paying measurement time.

use std::time::{Duration, Instant};

/// Warm-up period per benchmark.
pub const WARM_UP: Duration = Duration::from_millis(120);

/// How values produced by [`Bencher::iter_batched`] setup closures are
/// grouped. Accepted for API compatibility; the stub always runs one
/// setup per timed invocation, excluded from measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifies a benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `"{function_id}/{parameter}"`.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

/// A single measurement result, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Median ns/iter across timing frames.
    pub median_ns: f64,
    /// Fastest frame ns/iter.
    pub min_ns: f64,
    /// Slowest frame ns/iter.
    pub max_ns: f64,
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    measurement: Duration,
    result: Option<Sample>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up and batch-size calibration: grow the batch until one
        // frame takes ≳1 ms so Instant overhead is amortized.
        let mut batch: u64 = 1;
        let warm_deadline = Instant::now() + WARM_UP;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let frame = t.elapsed();
            if frame < Duration::from_millis(1) {
                batch = batch.saturating_mul(2);
            } else if Instant::now() >= warm_deadline {
                break;
            }
        }
        let mut frames_ns: Vec<f64> = Vec::new();
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline || frames_ns.len() < 5 {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            frames_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if frames_ns.len() >= 500 {
                break;
            }
        }
        frames_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.result = Some(Sample {
            median_ns: frames_ns[frames_ns.len() / 2],
            min_ns: frames_ns[0],
            max_ns: frames_ns[frames_ns.len() - 1],
        });
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        if self.test_mode {
            let input = setup();
            std::hint::black_box(routine(input));
            return;
        }
        let warm_deadline = Instant::now() + WARM_UP;
        while Instant::now() < warm_deadline {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let mut frames_ns: Vec<f64> = Vec::new();
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline || frames_ns.len() < 5 {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            frames_ns.push(t.elapsed().as_nanos() as f64);
            if frames_ns.len() >= 5000 {
                break;
            }
        }
        frames_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.result = Some(Sample {
            median_ns: frames_ns[frames_ns.len() / 2],
            min_ns: frames_ns[0],
            max_ns: frames_ns[frames_ns.len() - 1],
        });
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark manager (criterion's entry-point type).
pub struct Criterion {
    test_mode: bool,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: false,
            measurement: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Applies command-line configuration. The stub honours `--test`
    /// (run every body once, no timing) and ignores everything else,
    /// including the benchmark-name filter cargo forwards.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            test_mode: self.test_mode,
            measurement: self.measurement,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(s) => println!(
                "{name:<40} time: [{} {} {}]",
                human_ns(s.min_ns),
                human_ns(s.median_ns),
                human_ns(s.max_ns)
            ),
            None => println!("{name:<40} ok (test mode)"),
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored — the stub sizes measurement by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the group's per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
