//! Heterogeneous-fleet acceptance tests: on a 3-class datacenter
//! (4/8/16-core classes with scaled power models) the correlation-aware
//! policy must beat the correlation-blind baselines on total energy —
//! the `exp_hetero` experiment's headline, pinned at test size.

use cavm_core::dvfs::DvfsMode;
use cavm_core::fleet::ServerFleet;
use cavm_sim::{Policy, ScenarioBuilder, SimReport};
use cavm_workload::datacenter::DatacenterTraceBuilder;

fn run(policy: Policy) -> SimReport {
    let traces = DatacenterTraceBuilder::new(48)
        .groups(4)
        .seed(2013)
        .idle_fraction(0.4)
        .vm_scale_range(0.35, 1.05)
        .duration_hours(6.0)
        .build()
        .unwrap()
        .select_top(16);
    ScenarioBuilder::new(traces)
        .server_fleet(ServerFleet::mixed_4_8_16(24, 16, 4).unwrap())
        .policy(policy)
        .dvfs_mode(DvfsMode::Static)
        .build()
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn proposed_beats_blind_baselines_on_three_class_fleet_energy() {
    let proposed = run(Policy::Proposed(Default::default()));
    let bfd = run(Policy::Bfd);
    let ffd = run(Policy::Ffd);
    let vs_bfd = proposed.energy.normalized_to(&bfd.energy).unwrap();
    let vs_ffd = proposed.energy.normalized_to(&ffd.energy).unwrap();
    assert!(vs_bfd < 0.99, "proposed/BFD energy ratio {vs_bfd}");
    assert!(vs_ffd < 0.99, "proposed/FFD energy ratio {vs_ffd}");
    // The correlation discount must not be bought with QoS: violations
    // stay at or below the blind baselines' level on this scenario.
    assert!(proposed.max_violation_percent <= bfd.max_violation_percent + 1e-9);
}
