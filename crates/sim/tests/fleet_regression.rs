//! Sim-level regression pins for the fleet refactor: a uniform
//! scenario (one-class [`ServerFleet`]) must reproduce the pre-fleet
//! engine **bit-identically** — energy totals down to the f64 bits,
//! plus violations, migrations, peak server usage and the frequency
//! histogram mass.
//!
//! The pinned numbers were captured by running the pre-refactor engine
//! (commit `3555b16`) on the same deterministic scenario.
//!
//! [`ServerFleet`]: cavm_core::fleet::ServerFleet

use cavm_core::dvfs::DvfsMode;
use cavm_sim::{Policy, RepackTrigger, ScenarioBuilder, SimReport};
use cavm_workload::datacenter::DatacenterTraceBuilder;

fn run_with_trigger(policy: Policy, mode: DvfsMode, trigger: Option<RepackTrigger>) -> SimReport {
    let fleet = DatacenterTraceBuilder::new(9)
        .groups(3)
        .seed(5)
        .duration_hours(4.0)
        .build()
        .unwrap();
    let mut builder = ScenarioBuilder::new(fleet)
        .servers(12)
        .policy(policy)
        .dvfs_mode(mode);
    if let Some(trigger) = trigger {
        builder = builder.repack_trigger(trigger);
    }
    builder.build().unwrap().run().unwrap()
}

fn run(policy: Policy, mode: DvfsMode) -> SimReport {
    run_with_trigger(policy, mode, None)
}

/// `(policy, dynamic, joules_bits, violations, migrations, peak_servers, hist_mass)`
const GOLDEN: [(&str, bool, u64, usize, usize, usize, u64); 10] = [
    ("proposed", false, 0x4158717c4b2ee8b8, 0, 13, 3, 6480),
    ("bfd", false, 0x415ab172ebda2be2, 0, 7, 3, 6480),
    ("ffd", false, 0x415ab172ebda2be2, 0, 7, 3, 6480),
    ("pcp", false, 0x415abca5668259a0, 4, 9, 3, 6480),
    ("supervm", false, 0x415814b8504fc43b, 0, 7, 2, 5760),
    ("proposed", true, 0x41588d1f4a441f25, 0, 13, 3, 6480),
    ("bfd", true, 0x4158db74a6bd9e77, 0, 7, 3, 6480),
    ("ffd", true, 0x4158db74a6bd9e77, 0, 7, 3, 6480),
    ("pcp", true, 0x4159a8714cb19e93, 4, 9, 3, 6480),
    ("supervm", true, 0x41571d749724887c, 0, 7, 2, 5760),
];

fn policy_of(name: &str) -> Policy {
    match name {
        "proposed" => Policy::Proposed(Default::default()),
        "bfd" => Policy::Bfd,
        "ffd" => Policy::Ffd,
        "pcp" => Policy::Pcp {
            envelope_percentile: 90.0,
            affinity_threshold: 0.2,
        },
        "supervm" => Policy::SuperVm {
            min_pair_cost: 1.25,
        },
        other => panic!("unknown policy {other}"),
    }
}

#[test]
fn uniform_scenarios_reproduce_pre_refactor_reports_bitwise() {
    for (name, dynamic, joules_bits, violations, migrations, peak, hist) in GOLDEN {
        let mode = if dynamic {
            DvfsMode::Dynamic {
                interval_samples: 12,
            }
        } else {
            DvfsMode::Static
        };
        let r = run(policy_of(name), mode);
        assert_eq!(
            r.energy.joules().to_bits(),
            joules_bits,
            "{name} ({mode:?}): energy diverged from the pre-fleet engine \
             ({} J vs {} J)",
            r.energy.joules(),
            f64::from_bits(joules_bits)
        );
        assert_eq!(r.violation_instances, violations, "{name} ({mode:?})");
        assert_eq!(r.total_migrations(), migrations, "{name} ({mode:?})");
        assert_eq!(r.peak_servers_used(), peak, "{name} ({mode:?})");
        let mass: u64 = r.freq_histogram.iter().flatten().sum();
        assert_eq!(mass, hist, "{name} ({mode:?})");
        // The degenerate path also reports a single class whose
        // breakdown equals the totals.
        assert_eq!(r.classes.len(), 1);
        assert_eq!(r.classes[0].energy, r.energy);
    }
}

/// An explicit `RepackTrigger::Periodic` is the default schedule
/// spelled out: its reports (already pinned to the pre-fleet engine by
/// the golden test above) must stay bit-identical, field for field,
/// and never count an off-cycle re-pack.
#[test]
fn explicit_periodic_trigger_is_bit_identical_to_the_default() {
    for (name, dynamic) in [
        ("proposed", false),
        ("bfd", true),
        ("pcp", false),
        ("supervm", true),
    ] {
        let mode = if dynamic {
            DvfsMode::Dynamic {
                interval_samples: 12,
            }
        } else {
            DvfsMode::Static
        };
        let default = run(policy_of(name), mode);
        let explicit = run_with_trigger(policy_of(name), mode, Some(RepackTrigger::Periodic));
        assert_eq!(default, explicit, "{name} ({mode:?})");
        assert_eq!(explicit.offcycle_repacks, 0, "{name} ({mode:?})");
    }
}
