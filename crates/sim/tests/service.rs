//! Service-layer acceptance: fork equivalence, what-if isolation, and
//! session-host determinism.
//!
//! The service layer's whole contract is that concurrency and
//! speculation change **nothing**:
//!
//! * a fork replaying the identical event suffix is bit-identical to
//!   the original, for every policy and schedule (the snapshot really
//!   captures *all* controller state);
//! * a [`WhatIf`] re-pack on a fork never perturbs the live session
//!   (state hash and report unchanged);
//! * a [`SessionHost`] schedule produces the same merged report on 1
//!   worker and on 8 (session isolation ⇒ thread-count independence).
//!
//! [`WhatIf`]: cavm_sim::WhatIf
//! [`SessionHost`]: cavm_sim::SessionHost

use cavm_sim::service::{interleave, lifecycle_events, SessionHost};
use cavm_sim::{
    NullSink, Policy, QosGuard, RepackTrigger, Scenario, ScenarioBuilder, ShardedController,
};
use cavm_workload::datacenter::{DatacenterTraceBuilder, VmFleet};
use cavm_workload::lifecycle::{ArrivalProcess, Lifecycle, LifecycleBuilder, LifetimeModel};
use proptest::prelude::*;

fn fleet(vms: usize, hours: f64, seed: u64) -> VmFleet {
    DatacenterTraceBuilder::new(vms)
        .groups((vms / 3).max(1))
        .seed(seed)
        .duration_hours(hours)
        .build()
        .unwrap()
}

fn five_policies() -> [Policy; 5] {
    [
        Policy::Bfd,
        Policy::Ffd,
        Policy::Pcp {
            envelope_percentile: 90.0,
            affinity_threshold: 0.2,
        },
        Policy::SuperVm {
            min_pair_cost: 1.25,
        },
        Policy::Proposed(Default::default()),
    ]
}

fn churn(vms: usize, horizon: usize, seed: u64) -> Lifecycle {
    LifecycleBuilder::new(vms, horizon)
        .seed(seed)
        .arrivals(ArrivalProcess::Poisson {
            mean_gap_samples: 90.0,
        })
        .lifetimes(LifetimeModel::Exponential {
            mean_samples: 1200.0,
        })
        .build()
        .unwrap()
}

/// The two re-pack schedules the fork must survive: plain hybrid
/// (fragmentation-triggered off-cycle re-packs) and the guarded
/// schedule (hybrid + QoS guard + adaptive slack — every feedback
/// controller live at once).
fn scenario(traces: VmFleet, policy: Policy, guarded: bool, lifecycle: Lifecycle) -> Scenario {
    let vms = traces.len();
    let mut builder = ScenarioBuilder::new(traces)
        .servers(2 * vms)
        .policy(policy)
        .repack_trigger(RepackTrigger::Hybrid { slack: 1 })
        .lifecycle(lifecycle);
    if guarded {
        builder = builder
            .qos_guard(QosGuard {
                violation_ratio: 0.05,
            })
            .adaptive_slack_max(4);
    }
    builder.build().unwrap()
}

proptest! {
    /// Fork at a random event index, replay the identical suffix on
    /// original and fork, across all 5 policies × guarded/hybrid
    /// schedules: terminal reports bit-identical (`SimReport`
    /// `PartialEq` covers energy bits, periods, class breakdowns and
    /// histograms). Anything `Clone` missed — a meter, a guard
    /// counter, an RNG, the deferred queue — diverges here.
    #[test]
    fn fork_replays_an_identical_suffix_bit_identically(
        seed in 0u32..500,
        vms in 5usize..9,
        cut in 0.0f64..1.0,
        guarded in any::<bool>(),
    ) {
        let traces = fleet(vms, 2.0, u64::from(seed));
        let horizon = traces.vms()[0].fine.len();
        let lifecycle = churn(vms, horizon, u64::from(seed) + 1);
        for policy in five_policies() {
            let scenario = scenario(traces.clone(), policy, guarded, lifecycle.clone());
            let events =
                lifecycle_events(&traces, &lifecycle, scenario.period_samples()).unwrap();
            let k = ((events.len() as f64) * cut) as usize;

            let mut live = scenario.controller().unwrap();
            for event in &events[..k] {
                live.apply(event.clone(), &mut NullSink).unwrap();
            }
            let mut forked = live.fork();
            for event in &events[k..] {
                live.apply(event.clone(), &mut NullSink).unwrap();
                forked.apply(event.clone(), &mut NullSink).unwrap();
            }
            live.finish(&mut NullSink).unwrap();
            forked.finish(&mut NullSink).unwrap();
            prop_assert_eq!(
                live.report(),
                forked.report(),
                "{} (guarded={}) fork diverged at cut {}/{}",
                policy.name(),
                guarded,
                k,
                events.len()
            );
        }
    }
}

proptest! {
    /// The sharded session forks cell-wise: a `ShardedController` fork
    /// replaying the identical suffix stays bit-identical to the
    /// original merged report.
    #[test]
    fn sharded_fork_replays_identically_cell_wise(
        seed in 0u32..200,
        cut in 0.0f64..1.0,
    ) {
        let vms = 8;
        let traces = fleet(vms, 2.0, u64::from(seed));
        let horizon = traces.vms()[0].fine.len();
        let lifecycle = churn(vms, horizon, u64::from(seed) + 1);
        let scenario = scenario(
            traces.clone(),
            Policy::Proposed(Default::default()),
            false,
            lifecycle.clone(),
        );
        let events = lifecycle_events(&traces, &lifecycle, scenario.period_samples()).unwrap();
        let k = ((events.len() as f64) * cut) as usize;

        let mut live = ShardedController::new(scenario.controller_config(), 4).unwrap();
        for event in &events[..k] {
            live.apply(event.clone(), &mut NullSink).unwrap();
        }
        let mut forked = live.fork();
        for event in &events[k..] {
            live.apply(event.clone(), &mut NullSink).unwrap();
            forked.apply(event.clone(), &mut NullSink).unwrap();
        }
        live.finish(&mut NullSink).unwrap();
        forked.finish(&mut NullSink).unwrap();
        prop_assert_eq!(live.report(), forked.report());
    }
}

/// A `WhatIf` re-pack must never mutate the live session: the debug
/// state hash and the live report are unchanged, the delta is
/// internally consistent, and both the live session and the fork can
/// keep running afterwards.
#[test]
fn what_if_repack_never_mutates_the_live_session() {
    let traces = fleet(9, 4.0, 11);
    let horizon = traces.vms()[0].fine.len();
    let lifecycle = churn(9, horizon, 12);
    let scenario = scenario(
        traces.clone(),
        Policy::Proposed(Default::default()),
        true,
        lifecycle.clone(),
    );
    let events = lifecycle_events(&traces, &lifecycle, scenario.period_samples()).unwrap();
    // Stop mid-period with churn behind us so there is real state to
    // perturb (live VMs, meters, guard history, adaptive slack).
    let k = events.len() * 3 / 5 + 7;

    let mut live = scenario.controller().unwrap();
    for event in &events[..k] {
        live.apply(event.clone(), &mut NullSink).unwrap();
    }
    let state_before = format!("{live:?}");
    let report_before = live.report();

    let mut what_if = live.what_if();
    let delta = what_if.repack().unwrap();
    assert_eq!(
        format!("{live:?}"),
        state_before,
        "the speculative re-pack leaked into live state"
    );
    assert_eq!(live.report(), report_before);
    assert_eq!(
        delta.servers_freed,
        delta.servers_before.saturating_sub(delta.servers_after)
    );
    if live.live_vms() > 0 && live.mid_period() {
        assert_eq!(
            what_if.controller().offcycle_repacks() - live.offcycle_repacks(),
            1,
            "the fork, not the live session, recorded the re-pack"
        );
    }

    // The fork keeps accepting the event suffix; the live session is
    // still fully operational and finishes clean.
    for event in &events[k..] {
        what_if.apply(event.clone()).unwrap();
        live.apply(event.clone(), &mut NullSink).unwrap();
    }
    live.finish(&mut NullSink).unwrap();
    let mut fork = what_if.into_fork();
    fork.finish(&mut NullSink).unwrap();
    assert!(fork.report().energy.joules() > 0.0);
    assert!(live.report().energy.joules() > 0.0);
}

/// Cell-wise what-if: the sharded delta is the per-cell sum and the
/// live sharded session is untouched.
#[test]
fn sharded_what_if_sums_cells_and_stays_isolated() {
    let traces = fleet(8, 2.0, 21);
    let horizon = traces.vms()[0].fine.len();
    let lifecycle = churn(8, horizon, 22);
    let scenario = scenario(traces.clone(), Policy::Bfd, false, lifecycle.clone());
    let events = lifecycle_events(&traces, &lifecycle, scenario.period_samples()).unwrap();
    let mut live = ShardedController::new(scenario.controller_config(), 4).unwrap();
    let k = events.len() / 2 + 3;
    for event in &events[..k] {
        live.apply(event.clone(), &mut NullSink).unwrap();
    }
    let report_before = live.report();
    let delta = live.what_if_repack().unwrap();
    assert_eq!(live.report(), report_before, "what-if leaked into a cell");
    let mut expected = 0usize;
    for cell in 0..4 {
        expected += live
            .cell_controller(cell)
            .unwrap()
            .what_if()
            .repack()
            .unwrap()
            .servers_freed;
    }
    assert_eq!(delta.servers_freed, expected, "delta is the per-cell sum");
}

fn service_schedule(
    sessions: usize,
    vms: usize,
    hours: f64,
    seed: u64,
) -> (Vec<cavm_sim::ControllerConfig>, Vec<cavm_sim::SessionEvent>) {
    let mut configs = Vec::with_capacity(sessions);
    let mut streams = Vec::with_capacity(sessions);
    for s in 0..sessions {
        let traces = fleet(vms, hours, seed + s as u64);
        let horizon = traces.vms()[0].fine.len();
        let lifecycle = churn(vms, horizon, seed + 1000 + s as u64);
        let scenario = scenario(
            traces.clone(),
            five_policies()[s % 5],
            s % 2 == 0,
            lifecycle.clone(),
        );
        streams.push(lifecycle_events(&traces, &lifecycle, scenario.period_samples()).unwrap());
        configs.push(scenario.controller_config());
    }
    (configs, interleave(&streams))
}

proptest! {
    /// The same schedule on 1 worker and on 8 workers produces the
    /// identical `ServiceReport` — per-session reports *and* merge.
    /// Isolation is the mechanism: a session's events only ever meet
    /// its own controller, so the partition cannot matter.
    #[test]
    fn session_host_is_worker_count_independent(
        seed in 0u32..200,
        sessions in 2usize..8,
    ) {
        let (configs, schedule) = service_schedule(sessions, 5, 2.0, u64::from(seed));
        let narrow = SessionHost::new(configs.clone(), 1).unwrap();
        let wide = SessionHost::new(configs, 8).unwrap();
        let a = narrow.run(schedule.clone()).unwrap();
        let b = wide.run(schedule).unwrap();
        prop_assert_eq!(a, b);
    }
}

/// The ISSUE's headline shape: a 64-session schedule, bit-identical on
/// 1 worker and on 8.
#[test]
fn sixty_four_sessions_are_identical_on_one_and_eight_workers() {
    let (configs, schedule) = service_schedule(64, 4, 1.0, 2013);
    let narrow = SessionHost::new(configs.clone(), 1).unwrap();
    let wide = SessionHost::new(configs, 8).unwrap();
    let a = narrow.run(schedule.clone()).unwrap();
    let b = wide.run(schedule).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.merged.sessions, 64);
    assert!(a.merged.energy_joules > 0.0);
}
