//! Round-trip property: a random open-system scenario exported to the
//! Azure CSV trace format and re-ingested through `AzureTraceReader`
//! must drive the controller **bit-identically** — same event stream
//! through the metric sink, same terminal report — for every policy,
//! under the guarded re-pack schedule.
//!
//! This is the contract that makes the dataset layer trustworthy: CSV
//! export/import is not "approximately" the workload, it *is* the
//! workload. f64 demand samples are written with the shortest
//! round-trip `Display` form, timestamps as exact multiples of the
//! sample period, so nothing is lost either way.

use cavm_sim::{
    MetricSink, PeriodRecord, Policy, QosGuard, RepackEvent, RepackTrigger, ScenarioBuilder,
    SimReport, ViolationEvent,
};
use cavm_workload::datacenter::{DatacenterTraceBuilder, VmFleet};
use cavm_workload::dataset::{assemble, write_azure_csv, AzureTraceReader};
use cavm_workload::lifecycle::{ArrivalProcess, Lifecycle, LifecycleBuilder, LifetimeModel};
use proptest::prelude::*;
use std::io::Cursor;

/// Records every sink callback as a rendered line, so two runs can be
/// compared event-for-event (not just on the aggregated report).
#[derive(Default)]
struct Recorder {
    events: Vec<String>,
}

impl MetricSink for Recorder {
    fn on_period(&mut self, record: &PeriodRecord) {
        self.events.push(format!("period {record:?}"));
    }
    fn on_repack(&mut self, event: &RepackEvent) {
        self.events.push(format!("repack {event:?}"));
    }
    fn on_migration(&mut self, period: usize, vm: usize, from: usize, to: usize) {
        self.events
            .push(format!("migrate p{period} vm{vm} {from}->{to}"));
    }
    fn on_violation(&mut self, event: &ViolationEvent) {
        self.events.push(format!("violation {event:?}"));
    }
    fn on_class_energy(&mut self, period: usize, class: usize, name: &str, period_joules: f64) {
        self.events.push(format!(
            "energy p{period} class{class} {name} {period_joules}"
        ));
    }
    fn on_admit(&mut self, sample: usize, vm: usize, server: usize) {
        self.events.push(format!("admit s{sample} vm{vm}@{server}"));
    }
    fn on_server_fail(&mut self, sample: usize, server: usize, residents: usize) {
        self.events
            .push(format!("fail s{sample} srv{server} residents{residents}"));
    }
    fn on_server_recover(&mut self, sample: usize, server: usize) {
        self.events.push(format!("recover s{sample} srv{server}"));
    }
    fn on_summary(&mut self, report: &SimReport) {
        self.events.push(format!("summary {report:?}"));
    }
}

/// Runs one guarded open-system scenario and returns its full event
/// stream (the terminal `summary` line renders the whole report, so
/// comparing streams compares reports too).
fn replay(fleet: &VmFleet, lifecycle: &Lifecycle, policy: Policy) -> Vec<String> {
    let mut sink = Recorder::default();
    ScenarioBuilder::new(fleet.clone())
        .servers(10)
        .policy(policy)
        .repack_trigger(RepackTrigger::Fragmentation { slack: 1 })
        .qos_guard(QosGuard {
            violation_ratio: 0.08,
        })
        .period_samples(180)
        .lifecycle(lifecycle.clone())
        .build()
        .expect("scenario parameters are valid")
        .run_with_sink(&mut sink)
        .expect("scenario runs to completion");
    sink.events
}

fn all_policies() -> [Policy; 5] {
    [
        Policy::Bfd,
        Policy::Ffd,
        Policy::Pcp {
            envelope_percentile: 90.0,
            affinity_threshold: 0.10,
        },
        Policy::SuperVm {
            min_pair_cost: 1.25,
        },
        Policy::Proposed(Default::default()),
    ]
}

proptest! {
    /// Random builder schedule → Azure CSV → `AzureTraceReader` →
    /// identical controller behaviour for all five policies.
    #[test]
    fn azure_round_trip_is_bit_identical(
        seed in 0u32..1_000,
        vms in 4usize..10,
        groups in 2usize..4,
    ) {
        let fleet = DatacenterTraceBuilder::new(vms)
            .groups(groups.min(vms))
            .seed(seed as u64)
            .duration_hours(1.0)
            .vm_scale_range(0.35, 1.05)
            .build()
            .expect("builder parameters are valid");
        let horizon = fleet.vms()[0].fine.len();
        let lifecycle = LifecycleBuilder::new(vms, horizon)
            .seed(seed as u64 ^ 0xA52E)
            .arrivals(ArrivalProcess::Poisson {
                mean_gap_samples: horizon as f64 * 0.5 / vms as f64,
            })
            .lifetimes(LifetimeModel::Uniform {
                min_samples: horizon / 4,
                max_samples: (horizon * 3) / 4,
            })
            .build()
            .expect("lifecycle parameters are valid");

        let csv = write_azure_csv(&fleet, &lifecycle).expect("fleet exports");
        let dt = fleet.vms()[0].fine.dt();
        let mut reader = AzureTraceReader::new(Cursor::new(csv), dt, horizon)
            .expect("reader header parses");
        let (rt_fleet, rt_lifecycle) = assemble(&mut reader).expect("csv re-ingests");

        prop_assert_eq!(rt_lifecycle.entries(), lifecycle.entries());
        for policy in all_policies() {
            let events = replay(&fleet, &lifecycle, policy);
            let rt_events = replay(&rt_fleet, &rt_lifecycle, policy);
            prop_assert_eq!(&events, &rt_events, "event stream diverged under {}", policy.name());
        }
    }
}
