//! Stateful model-based invariant harness for [`DatacenterController`].
//!
//! Random `Arrive`/`Depart`/`Tick` sequences are driven through the
//! controller for **every** combination of the five policies, the
//! re-pack schedules (the three [`RepackTrigger`]s, with and without a
//! composed [`QosGuard`], static and adaptive slack) and
//! static/dynamic DVFS, while a naive reference model (the live VM
//! set, the event clock, and the armed state of the fragmentation and
//! QoS checks) predicts what must hold after every single event:
//!
//! * **membership consistency** — while mid-period, the placement
//!   holds exactly the live VMs, each on exactly one server, and the
//!   per-class server usage never exceeds what the fleet provides;
//! * **no over-capacity server** — for the capacity-respecting
//!   policies (BFD/FFD/Proposed) under schedules that re-pack every
//!   boundary *or* carry a [`QosGuard`] (whose boundary capacity check
//!   force-repacks overcommitted kept servers), no multi-VM server's
//!   predicted demand exceeds its own class capacity, and the live
//!   Eqn (3) bound ([`fragmentation_estimate`]) really is a lower
//!   bound on the active server count;
//! * **monotone event clock** — `Tick` advances the clock by exactly
//!   one sample; `Arrive`/`Depart` leave it alone;
//! * **the fragmentation trigger fires iff its predicate holds** — an
//!   off-cycle re-pack happens at a tick exactly when the check is
//!   armed (a departure evicted a placed VM), no QoS re-pack consumed
//!   it, and the Eqn (3) bound sits at least `slack` servers below the
//!   active count — `slack` read live from
//!   [`current_slack`], so the adaptive [`SlackController`] is pinned
//!   by the same predicate — with the event payload reporting exactly
//!   those numbers; `Periodic` never fires one;
//! * **the QoS guard fires iff armed ∧ ratio > threshold** — a
//!   guard re-pack happens at a tick exactly when a violation armed
//!   the check and the period's observed worst per-server violation
//!   ratio exceeds the guard's threshold (and someone is live to
//!   re-pack), with the event carrying exactly that violation count;
//!   without a configured guard it never fires.
//!
//! A second **chaos axis** layers random `ServerFail`/`ServerRecover`
//! events over the same matrix and checks the fault-tolerance
//! contract after every event:
//!
//! * **no VM rides a failed server** — post-event, every failed
//!   server's membership is empty and its health reads `Failed`
//!   exactly when the model says so;
//! * **membership is conserved under failure** — mid-period, the
//!   placed VMs and the deferred-admission queue partition the live
//!   set (no VM lost, none duplicated);
//! * **fault counters are monotone** — failures, recoveries,
//!   evacuations and the deferred-queue peak never decrease, and
//!   `degraded()` reads exactly "some server failed or someone is
//!   deferred";
//! * **degraded mode suspends consolidation** — no fragmentation
//!   re-pack fires while degraded (the QoS guard stays armed), and
//!   evacuation re-pack events never count as off-cycle re-packs;
//! * **the queue drains after recovery** — once every server is back
//!   and the horizon runs out, no VM is left deferred.
//!
//! [`DatacenterController`]: cavm_sim::DatacenterController
//! [`RepackTrigger`]: cavm_sim::RepackTrigger
//! [`QosGuard`]: cavm_sim::QosGuard
//! [`SlackController`]: cavm_sim::SlackController
//! [`current_slack`]: cavm_sim::DatacenterController::current_slack
//! [`fragmentation_estimate`]: cavm_sim::DatacenterController::fragmentation_estimate

use cavm_core::dvfs::DvfsMode;
use cavm_core::fleet::{ServerClass, ServerFleet};
use cavm_power::LinearPowerModel;
use cavm_sim::{
    ControllerConfig, DatacenterController, MetricSink, OvercommitConfig, Policy, QosGuard,
    RepackEvent, RepackReason, RepackTrigger, ShardedController,
};
use cavm_trace::{Reference, SimRng, TimeSeries};
use proptest::prelude::*;
use std::collections::BTreeSet;

const PERIOD: usize = 32;
const TOTAL: usize = 3 * PERIOD + PERIOD / 2;
const VMS: usize = 6;
const FIT_EPS: f64 = 1e-9;

fn five_policies() -> [Policy; 5] {
    [
        Policy::Bfd,
        Policy::Ffd,
        Policy::Pcp {
            envelope_percentile: 90.0,
            affinity_threshold: 0.2,
        },
        Policy::SuperVm {
            min_pair_cost: 1.25,
        },
        Policy::Proposed(Default::default()),
    ]
}

/// One re-pack schedule under test: the trigger, the optional QoS
/// guard composed onto it, and the optional adaptive-slack bound.
#[derive(Debug, Clone, Copy)]
struct Schedule {
    trigger: RepackTrigger,
    guard: Option<QosGuard>,
    adaptive_slack_max: Option<u32>,
    overcommit: Option<OvercommitConfig>,
}

impl Schedule {
    const fn plain(trigger: RepackTrigger) -> Self {
        Self {
            trigger,
            guard: None,
            adaptive_slack_max: None,
            overcommit: None,
        }
    }
}

/// The schedule axis: the PR 4 trigger matrix plus the guarded and
/// adaptive variants this harness exists to pin.
fn schedules() -> [Schedule; 7] {
    [
        Schedule::plain(RepackTrigger::Periodic),
        Schedule::plain(RepackTrigger::Fragmentation { slack: 1 }),
        Schedule::plain(RepackTrigger::Hybrid { slack: 2 }),
        // The QoS-guarded fragmentation schedule of the adaptive
        // experiment (low threshold so the guard actually exercises).
        Schedule {
            trigger: RepackTrigger::Fragmentation { slack: 1 },
            guard: Some(QosGuard {
                violation_ratio: 0.10,
            }),
            adaptive_slack_max: None,
            overcommit: None,
        },
        // Guard composed onto the paper's periodic clock.
        Schedule {
            trigger: RepackTrigger::Periodic,
            guard: Some(QosGuard {
                violation_ratio: 0.05,
            }),
            adaptive_slack_max: None,
            overcommit: None,
        },
        // Adaptive slack walking in [1, 3], with a guard on top.
        Schedule {
            trigger: RepackTrigger::Hybrid { slack: 1 },
            guard: Some(QosGuard {
                violation_ratio: 0.05,
            }),
            adaptive_slack_max: Some(3),
            overcommit: None,
        },
        // Deliberate correlation-gap overcommit on the guarded
        // fragmentation schedule (Fragmentation keeps `capacity_binds`
        // honest: the plain-capacity invariant is not asserted here,
        // the margin-bounded one below is).
        Schedule {
            trigger: RepackTrigger::Fragmentation { slack: 1 },
            guard: Some(QosGuard {
                violation_ratio: 0.10,
            }),
            adaptive_slack_max: None,
            overcommit: Some(OvercommitConfig {
                margin: 0.15,
                max_margin: 0.25,
            }),
        },
    ]
}

/// Whether per-server predicted load is bounded by the class capacity
/// for this combination. PCP and SuperVM legitimately overcommit
/// (off-peak provisioning / joint sizing), and a placement-keeping
/// (fragmentation-only) schedule lets predictions drift over kept
/// bins — with or without a [`QosGuard`], whose checks bound observed
/// *violations*, not predicted load (a kept server whose summed peaks
/// exceed capacity without ever violating is the correlation win, and
/// is deliberately left alone). Capacity binds only for the
/// boundary-re-packing schedules on capacity-respecting policies.
fn capacity_binds(policy: Policy, schedule: Schedule) -> bool {
    schedule.trigger.periodic_repacks()
        && matches!(policy, Policy::Bfd | Policy::Ffd | Policy::Proposed(_))
}

/// One VM's randomly drawn schedule.
#[derive(Debug, Clone, Copy)]
struct Plan {
    arrival: usize,
    /// Departure sample within the run, when the lease is bounded.
    departure: Option<usize>,
}

/// Draws a departure-heavy schedule: arrivals in the first 70% of the
/// horizon, ~75% of leases bounded and short, so fragmentation
/// actually happens.
fn draw_plans(rng: &mut SimRng) -> Vec<Plan> {
    (0..VMS)
        .map(|_| {
            let arrival = rng.below(TOTAL * 7 / 10);
            let departure = rng.bernoulli(0.75).then(|| {
                let life = 1 + rng.below(TOTAL / 2);
                arrival + life
            });
            Plan {
                arrival,
                departure: departure.filter(|&d| d < TOTAL),
            }
        })
        .collect()
}

/// A synthetic demand trace in [0.2, 4.0] cores.
fn draw_trace(rng: &mut SimRng, len: usize) -> TimeSeries {
    let base = rng.range_f64(0.5, 2.5);
    let values = (0..len.max(1))
        .map(|_| (base + rng.range_f64(-0.3, 1.5)).clamp(0.2, 4.0))
        .collect();
    TimeSeries::new(5.0, values).expect("non-empty synthetic trace")
}

/// Records every repack while forwarding nothing else.
#[derive(Default)]
struct RepackLog {
    events: Vec<RepackEvent>,
}

impl MetricSink for RepackLog {
    fn on_repack(&mut self, event: &RepackEvent) {
        self.events.push(*event);
    }
}

impl RepackLog {
    fn frag_fired(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.reason, RepackReason::Fragmentation { .. }))
            .count()
    }

    fn qos_fired(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.reason, RepackReason::QosGuard { .. }))
            .count()
    }

    fn evacuations_fired(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.reason, RepackReason::Evacuation { .. }))
            .count()
    }

    /// Off-cycle re-packs as `SimReport::offcycle_repacks` counts
    /// them: fragmentation- plus guard-fired (boundary `Overcommit`
    /// capacity checks ride the period clock).
    fn offcycle(&self) -> usize {
        self.frag_fired() + self.qos_fired()
    }
}

/// The naive reference model: who is live, and where the clock stands.
struct Model {
    live: BTreeSet<usize>,
    clock: usize,
}

/// Recomputes the Eqn (3) bound from public state only — must agree
/// with the controller's own `fragmentation_estimate`.
fn independent_estimate(c: &DatacenterController, fleet: &ServerFleet) -> usize {
    let demands = c.predicted_vms();
    let total: f64 = c
        .placement()
        .servers()
        .iter()
        .flatten()
        .map(|&id| demands[id].demand)
        .sum();
    fleet.estimate_server_count(total)
}

fn check_invariants(
    c: &DatacenterController,
    model: &Model,
    fleet: &ServerFleet,
    policy: Policy,
    schedule: Schedule,
) -> Result<(), TestCaseError> {
    let trigger = schedule.trigger;
    prop_assert_eq!(c.clock(), model.clock, "clock diverged from the model");
    prop_assert_eq!(c.live_vms(), model.live.len());

    let placement = c.placement();
    prop_assert_eq!(placement.classes().len(), placement.servers().len());

    // Per-class server usage never exceeds the fleet's supply.
    let mut used = vec![0usize; fleet.len()];
    for &class in placement.classes() {
        prop_assert!(class < fleet.len(), "placement names class {}", class);
        used[class] += 1;
    }
    for (class, &n) in used.iter().enumerate() {
        prop_assert!(
            n <= fleet.classes()[class].count(),
            "class {} uses {} of {} servers",
            class,
            n,
            fleet.classes()[class].count()
        );
    }

    if !c.mid_period() {
        // Between periods the placement is stale by contract; only the
        // structural checks above apply.
        return Ok(());
    }

    // Membership: exactly the live VMs, each exactly once.
    let mut members: Vec<usize> = placement.servers().iter().flatten().copied().collect();
    members.sort_unstable();
    let mut expected: Vec<usize> = model.live.iter().copied().collect();
    expected.sort_unstable();
    prop_assert_eq!(
        members,
        expected,
        "mid-period membership must equal the live set ({:?})",
        trigger
    );

    // The overcommit axis, part 1: the live per-class margins never
    // leave [0, max_margin] no matter how the feedback walks them.
    if let Some(oc) = schedule.overcommit {
        let margins = c.overcommit_margins().expect("overcommit is configured");
        prop_assert_eq!(margins.len(), fleet.len());
        for (class, &m) in margins.iter().enumerate() {
            prop_assert!(
                (0.0..=oc.max_margin + FIT_EPS).contains(&m),
                "class {} margin {} outside [0, {}]",
                class,
                m,
                oc.max_margin
            );
        }
    }

    if capacity_binds(policy, schedule) {
        let demands = c.predicted_vms();
        for (s, server) in placement.servers().iter().enumerate() {
            if server.len() < 2 {
                continue;
            }
            let load: f64 = server.iter().map(|&id| demands[id].demand).sum();
            let cores = fleet.classes()[placement.classes()[s]].cores();
            prop_assert!(
                load <= cores + FIT_EPS,
                "{:?}/{:?}: server {} packs {} cores onto {}",
                policy.name(),
                trigger,
                s,
                load,
                cores
            );
        }
        // With every server inside its own capacity, Eqn (3) is a
        // lower bound on the active count.
        let estimate = independent_estimate(c, fleet);
        prop_assert!(
            estimate <= placement.active_server_count(),
            "Eqn 3 bound {} exceeds {} active servers",
            estimate,
            placement.active_server_count()
        );
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn run_case(
    seed: u64,
    fleet: &ServerFleet,
    policy: Policy,
    schedule: Schedule,
    dvfs_mode: DvfsMode,
) -> Result<(), TestCaseError> {
    let trigger = schedule.trigger;
    let mut rng = SimRng::new(seed);
    let plans = draw_plans(&mut rng);
    let mut controller = DatacenterController::new(ControllerConfig {
        server_fleet: fleet.clone(),
        policy,
        repack_trigger: trigger,
        qos_guard: schedule.guard,
        adaptive_slack_max: schedule.adaptive_slack_max,
        overcommit: schedule.overcommit,
        dvfs_mode,
        period_samples: PERIOD,
        reference: Reference::Peak,
        dynamic_headroom: 0.25,
        default_demand: 2.0,
        sample_dt_s: 5.0,
        max_deferred: 1024,
    })
    .expect("harness config is valid");
    let mut sink = RepackLog::default();
    let mut model = Model {
        live: BTreeSet::new(),
        clock: 0,
    };

    for k in 0..TOTAL {
        for (id, plan) in plans.iter().enumerate() {
            if plan.departure == Some(k) {
                controller
                    .depart(id)
                    .map_err(|e| TestCaseError::fail(format!("depart({id}) at {k}: {e}")))?;
                model.live.remove(&id);
                check_invariants(&controller, &model, fleet, policy, schedule)?;
            }
        }
        for (id, plan) in plans.iter().enumerate() {
            if plan.arrival == k {
                let horizon = plan.departure.unwrap_or(TOTAL);
                let trace = draw_trace(&mut rng, horizon - k);
                let lease = plan.departure.map(|d| d - k);
                controller
                    .arrive(id, trace, lease, &mut sink)
                    .map_err(|e| TestCaseError::fail(format!("arrive({id}) at {k}: {e}")))?;
                model.live.insert(id);
                check_invariants(&controller, &model, fleet, policy, schedule)?;
                // The overcommit axis, part 2: at every admission the
                // landing server's predicted per-VM sum stays within
                // capacity x (1 + max_margin) — the deliberate bet is
                // bounded at the moment it is made. (Standing
                // placements may drift past this between boundaries on
                // placement-keeping schedules; that is the guard's
                // territory, not the admission gate's.)
                // Deferred arrivals (the fleet genuinely full even
                // with the margin) have no landing server to check.
                if let (Some(oc), Some(s)) =
                    (schedule.overcommit, controller.placement().server_of(id))
                {
                    let placement = controller.placement();
                    let members = &placement.servers()[s];
                    if members.len() >= 2 {
                        let demands = controller.predicted_vms();
                        let load: f64 = members.iter().map(|&i| demands[i].demand).sum();
                        let cores = fleet.classes()[placement.classes()[s]].cores();
                        prop_assert!(
                            load <= cores * (1.0 + oc.max_margin) + FIT_EPS,
                            "admission of vm {} put {} cores on a {}-core server \
                             (margin cap {})",
                            id,
                            load,
                            cores,
                            oc.max_margin
                        );
                    }
                }
            }
        }

        // Both off-cycle predicates, read through public state just
        // before the tick that would act on them. The guard outranks
        // the fragmentation check, whose armed state it consumes.
        let mid = controller.mid_period();
        let live = controller.live_vms();
        let qos_armed = controller.qos_armed();
        let worst = controller.period_worst_violations();
        prop_assert!(
            (controller.period_violation_ratio() - worst as f64 / PERIOD as f64).abs() < 1e-12
        );
        let expect_qos = mid
            && qos_armed
            && live > 0
            && schedule.guard.is_some_and(|g| g.exceeded(worst, PERIOD));
        let armed = controller.repack_armed();
        let estimate = independent_estimate(&controller, fleet);
        prop_assert_eq!(estimate, controller.fragmentation_estimate());
        let active = controller.placement().active_server_count();
        let slack = controller.current_slack();
        prop_assert_eq!(slack.is_some(), trigger.slack().is_some());
        let expect_frag = !expect_qos
            && mid
            && armed
            && slack.is_some_and(|s| active.saturating_sub(estimate) >= s as usize);

        let (frag_before, qos_before) = (sink.frag_fired(), sink.qos_fired());
        controller
            .tick(&mut sink)
            .map_err(|e| TestCaseError::fail(format!("tick at {k}: {e}")))?;
        model.clock += 1;
        let frag = sink.frag_fired() - frag_before;
        let qos = sink.qos_fired() - qos_before;
        prop_assert_eq!(
            qos,
            usize::from(expect_qos),
            "{:?} at sample {}: qos_armed={} worst={} guard={:?}",
            trigger,
            k,
            qos_armed,
            worst,
            schedule.guard
        );
        prop_assert_eq!(
            frag,
            usize::from(expect_frag),
            "{:?} at sample {}: armed={} estimate={} active={} slack={:?} qos_fired={}",
            trigger,
            k,
            armed,
            estimate,
            active,
            slack,
            qos
        );
        if frag + qos == 1 {
            let event = *sink
                .events
                .iter()
                .rev()
                .find(|e| !matches!(e.reason, RepackReason::Overcommit { .. }))
                .expect("a repack was recorded");
            prop_assert_eq!(event.sample, k);
            if frag == 1 {
                prop_assert_eq!(
                    event.reason,
                    RepackReason::Fragmentation { estimate, active }
                );
            } else {
                prop_assert_eq!(event.reason, RepackReason::QosGuard { violations: worst });
            }
            prop_assert_eq!(event.servers_before, active);
            prop_assert_eq!(event.slack_after, controller.current_slack());
            if let Some(max) = schedule.adaptive_slack_max {
                let s = event.slack_after.expect("fragmentation dimension");
                prop_assert!(trigger.slack().unwrap() <= s && s <= max);
            }
        }
        check_invariants(&controller, &model, fleet, policy, schedule)?;
    }

    controller
        .finish(&mut sink)
        .map_err(|e| TestCaseError::fail(format!("finish: {e}")))?;
    let report = controller.report();
    prop_assert_eq!(report.offcycle_repacks, sink.offcycle());
    prop_assert_eq!(report.periods.len(), TOTAL / PERIOD);
    if schedule.guard.is_none() {
        // No guard: nothing may fire guard-shaped re-packs, on- or
        // off-cycle.
        prop_assert_eq!(sink.qos_fired(), 0);
        prop_assert!(!sink
            .events
            .iter()
            .any(|e| matches!(e.reason, RepackReason::Overcommit { .. })));
    }
    if trigger == RepackTrigger::Periodic && schedule.guard.is_none() {
        prop_assert_eq!(report.offcycle_repacks, 0);
        // Every repack rode the period clock.
        prop_assert!(sink
            .events
            .iter()
            .all(|e| e.reason == RepackReason::Periodic));
    }
    Ok(())
}

/// Monotone fault-counter snapshot.
#[derive(Default, Clone, Copy)]
struct FaultCounters {
    failures: usize,
    recoveries: usize,
    evacuations: usize,
    deferred_peak: usize,
}

impl FaultCounters {
    fn read(c: &DatacenterController) -> Self {
        Self {
            failures: c.server_failures(),
            recoveries: c.server_recoveries(),
            evacuations: c.evacuations(),
            deferred_peak: c.deferred_peak(),
        }
    }
}

/// The chaos-axis invariants, checked after every single event.
fn check_chaos_invariants(
    c: &DatacenterController,
    model: &Model,
    down: &BTreeSet<usize>,
    last: &mut FaultCounters,
) -> Result<(), TestCaseError> {
    // Health is tracked per provisioned server and agrees with the
    // model's down set exactly.
    let health = c.server_health();
    prop_assert_eq!(health.len(), c.placement().server_count());
    for (s, h) in health.iter().enumerate() {
        prop_assert_eq!(
            h.is_failed(),
            down.contains(&s),
            "server {} health diverged from the model",
            s
        );
    }
    prop_assert_eq!(c.failed_servers(), down.len());

    // No VM ever rides a failed server.
    for &s in down {
        prop_assert!(
            c.placement().servers()[s].is_empty(),
            "failed server {} still hosts VMs",
            s
        );
    }

    // Placed ∪ deferred partitions the live set (mid-period; between
    // periods the placement is stale by contract, but the deferred
    // queue must still only hold live VMs).
    let placed: BTreeSet<usize> = c.placement().servers().iter().flatten().copied().collect();
    let deferred: BTreeSet<usize> = c.deferred_ids().into_iter().collect();
    prop_assert_eq!(deferred.len(), c.deferred_vms(), "queue holds duplicates");
    prop_assert!(
        deferred.is_subset(&model.live),
        "deferred queue holds dead VMs"
    );
    if c.mid_period() {
        prop_assert!(
            placed.is_disjoint(&deferred),
            "a VM is both placed and deferred"
        );
        let mut covered = placed;
        covered.extend(&deferred);
        prop_assert_eq!(
            &covered,
            &model.live,
            "placed ∪ deferred must equal the live set"
        );
    }

    // Degraded is exactly "capacity lost or someone waiting".
    prop_assert_eq!(
        c.degraded(),
        !down.is_empty() || c.deferred_vms() > 0,
        "degraded() diverged from its definition"
    );

    // Counters only ever grow.
    let now = FaultCounters::read(c);
    prop_assert!(now.failures >= last.failures, "failure counter regressed");
    prop_assert!(
        now.recoveries >= last.recoveries,
        "recovery counter regressed"
    );
    prop_assert!(
        now.evacuations >= last.evacuations,
        "evacuation counter regressed"
    );
    prop_assert!(
        now.deferred_peak >= last.deferred_peak.max(c.deferred_vms()),
        "deferred peak fell below the live queue"
    );
    *last = now;
    Ok(())
}

/// Drives one policy × schedule combination through the departure-heavy
/// plan with random server failures layered on top. Failures stop (and
/// everything recovers) one period before the horizon so the drained
/// end state is checkable.
fn run_chaos_case(
    seed: u64,
    fleet: &ServerFleet,
    policy: Policy,
    schedule: Schedule,
) -> Result<(usize, usize), TestCaseError> {
    let mut rng = SimRng::new(seed);
    let plans = draw_plans(&mut rng);
    let mut fault_rng = SimRng::new(seed ^ 0x5EED_FA17);
    let mut controller = DatacenterController::new(ControllerConfig {
        server_fleet: fleet.clone(),
        policy,
        repack_trigger: schedule.trigger,
        qos_guard: schedule.guard,
        adaptive_slack_max: schedule.adaptive_slack_max,
        overcommit: schedule.overcommit,
        dvfs_mode: DvfsMode::Static,
        period_samples: PERIOD,
        reference: Reference::Peak,
        dynamic_headroom: 0.25,
        default_demand: 2.0,
        sample_dt_s: 5.0,
        max_deferred: 1024,
    })
    .expect("harness config is valid");
    let mut sink = RepackLog::default();
    let mut model = Model {
        live: BTreeSet::new(),
        clock: 0,
    };
    let mut down: BTreeSet<usize> = BTreeSet::new();
    let mut counters = FaultCounters::default();
    let calm_after = TOTAL - PERIOD;

    for k in 0..TOTAL {
        // Recoveries first, as the replay engine delivers them.
        if k == calm_after {
            for server in std::mem::take(&mut down) {
                controller
                    .server_recover(server, &mut sink)
                    .map_err(|e| TestCaseError::fail(format!("recover({server}) at {k}: {e}")))?;
            }
            check_chaos_invariants(&controller, &model, &down, &mut counters)?;
        } else if !down.is_empty() && fault_rng.bernoulli(0.3) {
            let pick = *down
                .iter()
                .nth(fault_rng.below(down.len()))
                .expect("non-empty down set");
            down.remove(&pick);
            controller
                .server_recover(pick, &mut sink)
                .map_err(|e| TestCaseError::fail(format!("recover({pick}) at {k}: {e}")))?;
            check_chaos_invariants(&controller, &model, &down, &mut counters)?;
        }

        for (id, plan) in plans.iter().enumerate() {
            if plan.departure == Some(k) {
                controller
                    .depart(id)
                    .map_err(|e| TestCaseError::fail(format!("depart({id}) at {k}: {e}")))?;
                model.live.remove(&id);
                check_chaos_invariants(&controller, &model, &down, &mut counters)?;
            }
        }
        for (id, plan) in plans.iter().enumerate() {
            if plan.arrival == k {
                let horizon = plan.departure.unwrap_or(TOTAL);
                let trace = draw_trace(&mut rng, horizon - k);
                let lease = plan.departure.map(|d| d - k);
                controller
                    .arrive(id, trace, lease, &mut sink)
                    .map_err(|e| TestCaseError::fail(format!("arrive({id}) at {k}: {e}")))?;
                model.live.insert(id);
                check_chaos_invariants(&controller, &model, &down, &mut counters)?;
            }
        }

        // Random failure of a provisioned, currently-healthy server.
        let provisioned = controller.placement().server_count();
        if k < calm_after && provisioned > down.len() && fault_rng.bernoulli(0.08) {
            let healthy: Vec<usize> = (0..provisioned).filter(|s| !down.contains(s)).collect();
            let pick = healthy[fault_rng.below(healthy.len())];
            controller
                .server_fail(pick, &mut sink)
                .map_err(|e| TestCaseError::fail(format!("fail({pick}) at {k}: {e}")))?;
            down.insert(pick);
            check_chaos_invariants(&controller, &model, &down, &mut counters)?;
        }

        // While degraded, consolidation is suspended: no fragmentation
        // re-pack may fire at this tick (the QoS guard stays live).
        let degraded_before = controller.degraded();
        let frag_before = sink.frag_fired();
        controller
            .tick(&mut sink)
            .map_err(|e| TestCaseError::fail(format!("tick at {k}: {e}")))?;
        model.clock += 1;
        if degraded_before {
            prop_assert_eq!(
                sink.frag_fired(),
                frag_before,
                "a fragmentation re-pack fired while degraded at sample {}",
                k
            );
        }
        check_chaos_invariants(&controller, &model, &down, &mut counters)?;
    }

    // Everything recovered one period ago and every tick retries the
    // queue: nobody may still be waiting.
    prop_assert!(down.is_empty());
    prop_assert_eq!(
        controller.deferred_vms(),
        0,
        "deferred queue failed to drain after recovery"
    );
    controller
        .finish(&mut sink)
        .map_err(|e| TestCaseError::fail(format!("finish: {e}")))?;
    let report = controller.report();
    // Evacuation re-packs are accounted separately from off-cycle
    // consolidation, and the report mirrors the counters.
    prop_assert_eq!(report.offcycle_repacks, sink.offcycle());
    prop_assert_eq!(report.server_failures, counters.failures);
    prop_assert_eq!(report.evacuations, counters.evacuations);
    prop_assert_eq!(report.deferred_peak, counters.deferred_peak);
    // At most one evacuation event per failure (empty servers fail
    // silently), and moved evacuees imply a streamed evacuation event.
    prop_assert!(sink.evacuations_fired() <= counters.failures);
    if counters.evacuations > 0 {
        prop_assert!(sink.evacuations_fired() > 0);
    }
    Ok((counters.failures, counters.evacuations))
}

fn uniform_fleet() -> ServerFleet {
    ServerFleet::uniform(8, 8.0, LinearPowerModel::xeon_e5410()).expect("valid uniform fleet")
}

fn hetero_fleet() -> ServerFleet {
    let xeon = LinearPowerModel::xeon_e5410;
    ServerFleet::new(vec![
        ServerClass::new("quad", 6, 4.0, xeon().scaled(0.6).expect("factor > 0"))
            .expect("valid class"),
        ServerClass::new("octo", 4, 8.0, xeon()).expect("valid class"),
        ServerClass::new("hexadeca", 2, 16.0, xeon().scaled(1.9).expect("factor > 0"))
            .expect("valid class"),
    ])
    .expect("valid hetero fleet")
}

proptest! {
    /// The full matrix: every policy × schedule (triggers, guards,
    /// adaptive slack) × DVFS mode survives a random departure-heavy
    /// event sequence on a uniform fleet with all per-event invariants
    /// intact. Dynamic DVFS multiplies only the plain-trigger
    /// schedules (the guard logic never reads the governor) to bound
    /// runtime.
    #[test]
    fn invariants_hold_for_all_policies_schedules_and_dvfs(seed in any::<u64>()) {
        let fleet = uniform_fleet();
        for policy in five_policies() {
            for schedule in schedules() {
                run_case(seed, &fleet, policy, schedule, DvfsMode::Static)?;
                if schedule.guard.is_none() {
                    run_case(
                        seed,
                        &fleet,
                        policy,
                        schedule,
                        DvfsMode::Dynamic { interval_samples: 8 },
                    )?;
                }
            }
        }
    }

    /// Heterogeneous fleets keep the same invariants (class counts and
    /// per-class capacities included); sampled on the two most
    /// structurally different policies to bound runtime.
    #[test]
    fn invariants_hold_on_heterogeneous_fleets(seed in any::<u64>()) {
        let fleet = hetero_fleet();
        for policy in [Policy::Proposed(Default::default()), Policy::Bfd] {
            for schedule in schedules() {
                run_case(seed, &fleet, policy, schedule, DvfsMode::Static)?;
            }
        }
    }

    /// The chaos axis: every policy × schedule survives the same
    /// departure-heavy sequence with random server failures and
    /// recoveries layered on top, with every fault-tolerance invariant
    /// checked after every event.
    #[test]
    fn chaos_invariants_hold_for_all_policies_and_schedules(seed in any::<u64>()) {
        let fleet = uniform_fleet();
        for policy in five_policies() {
            for schedule in schedules() {
                run_chaos_case(seed, &fleet, policy, schedule)?;
            }
        }
    }

    /// Chaos on a heterogeneous fleet: class-aware evacuation targets
    /// and per-class capacity bookkeeping under failure.
    #[test]
    fn chaos_invariants_hold_on_heterogeneous_fleets(seed in any::<u64>()) {
        let fleet = hetero_fleet();
        for policy in [Policy::Proposed(Default::default()), Policy::Bfd] {
            for schedule in schedules() {
                run_chaos_case(seed, &fleet, policy, schedule)?;
            }
        }
    }
}

/// Builds the harness [`ControllerConfig`] for one combination.
fn harness_config(
    fleet: &ServerFleet,
    policy: Policy,
    schedule: Schedule,
    dvfs_mode: DvfsMode,
) -> ControllerConfig {
    ControllerConfig {
        server_fleet: fleet.clone(),
        policy,
        repack_trigger: schedule.trigger,
        qos_guard: schedule.guard,
        adaptive_slack_max: schedule.adaptive_slack_max,
        overcommit: schedule.overcommit,
        dvfs_mode,
        period_samples: PERIOD,
        reference: Reference::Peak,
        dynamic_headroom: 0.25,
        default_demand: 2.0,
        sample_dt_s: 5.0,
        max_deferred: 1024,
    }
}

/// The cells axis, part 1: a [`ShardedController`] configured with a
/// single cell must be **bit-identical** to the flat controller —
/// same terminal report (energy compared bitwise) *and* the same
/// streamed re-pack event sequence — because the degenerate path
/// delegates verbatim instead of routing.
fn run_single_cell_equivalence_case(
    seed: u64,
    fleet: &ServerFleet,
    policy: Policy,
    schedule: Schedule,
    dvfs_mode: DvfsMode,
) -> Result<(), TestCaseError> {
    let mut rng = SimRng::new(seed);
    let plans = draw_plans(&mut rng);
    let traces: Vec<TimeSeries> = plans
        .iter()
        .map(|plan| {
            let horizon = plan.departure.unwrap_or(TOTAL);
            draw_trace(&mut rng, horizon - plan.arrival)
        })
        .collect();
    let mut flat = DatacenterController::new(harness_config(fleet, policy, schedule, dvfs_mode))
        .expect("harness config is valid");
    let mut sharded = ShardedController::new(harness_config(fleet, policy, schedule, dvfs_mode), 1)
        .expect("harness config is valid");
    let mut flat_sink = RepackLog::default();
    let mut sharded_sink = RepackLog::default();

    for k in 0..TOTAL {
        for (id, plan) in plans.iter().enumerate() {
            if plan.departure == Some(k) {
                flat.depart(id)
                    .map_err(|e| TestCaseError::fail(format!("flat depart({id}) at {k}: {e}")))?;
                sharded
                    .depart(id)
                    .map_err(|e| TestCaseError::fail(format!("cell depart({id}) at {k}: {e}")))?;
            }
        }
        for (id, plan) in plans.iter().enumerate() {
            if plan.arrival == k {
                let lease = plan.departure.map(|d| d - k);
                flat.arrive(id, traces[id].clone(), lease, &mut flat_sink)
                    .map_err(|e| TestCaseError::fail(format!("flat arrive({id}) at {k}: {e}")))?;
                sharded
                    .arrive(id, traces[id].clone(), lease, &mut sharded_sink)
                    .map_err(|e| TestCaseError::fail(format!("cell arrive({id}) at {k}: {e}")))?;
            }
        }
        flat.tick(&mut flat_sink)
            .map_err(|e| TestCaseError::fail(format!("flat tick at {k}: {e}")))?;
        sharded
            .tick(&mut sharded_sink)
            .map_err(|e| TestCaseError::fail(format!("cell tick at {k}: {e}")))?;
        prop_assert_eq!(flat.clock(), sharded.clock());
        prop_assert_eq!(flat.live_vms(), sharded.live_vms());
    }
    prop_assert_eq!(
        &flat_sink.events,
        &sharded_sink.events,
        "single-cell re-pack stream diverged from flat ({:?}/{:?})",
        policy.name(),
        schedule.trigger
    );
    let a = flat.report();
    let b = sharded.report();
    prop_assert_eq!(
        a.energy.joules().to_bits(),
        b.energy.joules().to_bits(),
        "single-cell energy diverged bitwise ({:?}/{:?})",
        policy.name(),
        schedule.trigger
    );
    prop_assert_eq!(a, b, "single-cell report diverged from flat");
    Ok(())
}

/// The cells axis, part 2: with several cells, sketch-routed admission
/// must never violate **per-class capacity inside any cell** — every
/// cell's placement uses at most the servers its sub-fleet provides,
/// the sub-fleets partition the global fleet exactly, the union of the
/// cells' live VMs matches the model, and the merged report is the sum
/// of its parts.
fn run_multi_cell_case(
    seed: u64,
    fleet: &ServerFleet,
    policy: Policy,
    cells: usize,
) -> Result<(), TestCaseError> {
    let schedule = Schedule::plain(RepackTrigger::Periodic);
    let mut rng = SimRng::new(seed);
    let plans = draw_plans(&mut rng);
    let mut sharded = ShardedController::new(
        harness_config(fleet, policy, schedule, DvfsMode::Static),
        cells,
    )
    .expect("harness config is valid");
    let mut sink = RepackLog::default();
    let mut model = Model {
        live: BTreeSet::new(),
        clock: 0,
    };

    // The sub-fleets partition the global fleet: per-class counts sum
    // to the global count and every cell owns at least one server.
    let mut class_totals = vec![0usize; fleet.len()];
    for cell in 0..sharded.cells() {
        let sub = &sharded
            .cell_controller(cell)
            .expect("cell exists")
            .config()
            .server_fleet;
        prop_assert!(sub.total_slots().expect("bounded sub-fleet") >= 1);
        for class in sub.classes() {
            let global = fleet
                .classes()
                .iter()
                .position(|g| g.name() == class.name())
                .expect("cell classes come from the global fleet");
            prop_assert_eq!(class.cores(), fleet.classes()[global].cores());
            class_totals[global] += class.count();
        }
    }
    let global_counts: Vec<usize> = fleet.classes().iter().map(ServerClass::count).collect();
    prop_assert_eq!(
        class_totals,
        global_counts,
        "cells must partition the fleet"
    );

    for k in 0..TOTAL {
        for (id, plan) in plans.iter().enumerate() {
            if plan.departure == Some(k) {
                sharded
                    .depart(id)
                    .map_err(|e| TestCaseError::fail(format!("depart({id}) at {k}: {e}")))?;
                model.live.remove(&id);
            }
        }
        for (id, plan) in plans.iter().enumerate() {
            if plan.arrival == k {
                let horizon = plan.departure.unwrap_or(TOTAL);
                let trace = draw_trace(&mut rng, horizon - k);
                sharded
                    .arrive(id, trace, plan.departure.map(|d| d - k), &mut sink)
                    .map_err(|e| TestCaseError::fail(format!("arrive({id}) at {k}: {e}")))?;
                model.live.insert(id);
                let cell = sharded.cell_of_vm(id).expect("admitted VMs are routed");
                prop_assert!(cell < sharded.cells());
            }
        }
        sharded
            .tick(&mut sink)
            .map_err(|e| TestCaseError::fail(format!("tick at {k}: {e}")))?;
        model.clock += 1;
        prop_assert_eq!(sharded.clock(), model.clock);
        prop_assert_eq!(
            sharded.live_vms() + sharded.deferred_vms(),
            model.live.len()
        );

        // Per-cell, per-class capacity: no cell's placement may name
        // more servers of a class than its own sub-fleet provides.
        for cell in 0..sharded.cells() {
            let inner = sharded.cell_controller(cell).expect("cell exists");
            let sub = &inner.config().server_fleet;
            let mut used = vec![0usize; sub.len()];
            for &class in inner.placement().classes() {
                prop_assert!(class < sub.len(), "cell {} names class {}", cell, class);
                used[class] += 1;
            }
            for (class, &n) in used.iter().enumerate() {
                prop_assert!(
                    n <= sub.classes()[class].count(),
                    "cell {} uses {} of {} class-{} servers at sample {}",
                    cell,
                    n,
                    sub.classes()[class].count(),
                    class,
                    k
                );
            }
        }
    }

    // The merged report is the sum of its cells.
    let merged = sharded.report();
    let inner_reports: Vec<_> = (0..sharded.cells())
        .map(|c| sharded.cell_controller(c).expect("cell exists").report())
        .collect();
    prop_assert_eq!(merged.periods.len(), TOTAL / PERIOD);
    prop_assert_eq!(
        merged.violation_instances,
        inner_reports
            .iter()
            .map(|r| r.violation_instances)
            .sum::<usize>()
    );
    prop_assert_eq!(
        merged.online_admissions,
        inner_reports
            .iter()
            .map(|r| r.online_admissions)
            .sum::<usize>()
    );
    for (p, row) in merged.periods.iter().enumerate() {
        let sum: usize = inner_reports
            .iter()
            .filter_map(|r| r.periods.get(p))
            .map(|r| r.servers_used)
            .sum();
        prop_assert_eq!(row.servers_used, sum, "period {} server sum diverged", p);
    }
    Ok(())
}

proptest! {
    /// Single-cell ≡ flat, for **all five policies** across the plain
    /// schedules and a guarded one, static and dynamic DVFS — the
    /// degenerate sharded configuration may not perturb a single bit.
    #[test]
    fn sharded_single_cell_is_bit_identical_to_flat(seed in any::<u64>()) {
        let fleet = uniform_fleet();
        let guarded = Schedule {
            trigger: RepackTrigger::Fragmentation { slack: 1 },
            guard: Some(QosGuard { violation_ratio: 0.10 }),
            adaptive_slack_max: None,
            overcommit: None,
        };
        // Overcommit margins are per-cell state; the degenerate single
        // cell must still delegate them bit-identically.
        let overcommitted = Schedule {
            overcommit: Some(OvercommitConfig { margin: 0.15, max_margin: 0.25 }),
            ..guarded
        };
        for policy in five_policies() {
            for schedule in [
                Schedule::plain(RepackTrigger::Periodic),
                Schedule::plain(RepackTrigger::Hybrid { slack: 2 }),
                guarded,
                overcommitted,
            ] {
                run_single_cell_equivalence_case(seed, &fleet, policy, schedule, DvfsMode::Static)?;
            }
            run_single_cell_equivalence_case(
                seed,
                &fleet,
                policy,
                Schedule::plain(RepackTrigger::Periodic),
                DvfsMode::Dynamic { interval_samples: 8 },
            )?;
        }
    }

    /// Sketch-routed admission over 2–3 cells keeps every cell inside
    /// its own per-class server budget for all five policies, and the
    /// merged report stays the sum of its cells.
    #[test]
    fn multi_cell_admission_respects_per_class_capacity(
        seed in any::<u64>(),
        cells in 2usize..4,
    ) {
        let fleet = uniform_fleet();
        for policy in five_policies() {
            run_multi_cell_case(seed, &fleet, policy, cells)?;
        }
        run_multi_cell_case(seed, &hetero_fleet(), Policy::Proposed(Default::default()), cells)?;
    }
}

/// The chaos axis has teeth: somewhere in the seed range the proptests
/// sweep, failures actually hit occupied servers (forcing evacuations)
/// — otherwise the no-VM-on-failed-server and membership invariants
/// would be vacuous.
#[test]
fn failures_and_evacuations_actually_happen_in_the_chaos_harness() {
    let fleet = uniform_fleet();
    let mut failures = 0usize;
    let mut evacuations = 0usize;
    for seed in 0..16u64 {
        let (f, e) = run_chaos_case(
            seed,
            &fleet,
            Policy::Proposed(Default::default()),
            Schedule::plain(RepackTrigger::Hybrid { slack: 1 }),
        )
        .expect("chaos case");
        failures += f;
        evacuations += e;
    }
    assert!(failures > 0, "no seed in 0..16 ever failed a server");
    assert!(
        evacuations > 0,
        "no failure in 0..16 ever hit an occupied server — evacuation is untested"
    );
}

/// Replays one harness schedule end to end and reports what fired.
fn smoke_run(seed: u64, fleet: &ServerFleet, schedule: Schedule) -> RepackLog {
    let mut rng = SimRng::new(seed);
    let plans = draw_plans(&mut rng);
    let mut controller = DatacenterController::new(ControllerConfig {
        server_fleet: fleet.clone(),
        policy: Policy::Proposed(Default::default()),
        repack_trigger: schedule.trigger,
        qos_guard: schedule.guard,
        adaptive_slack_max: schedule.adaptive_slack_max,
        overcommit: schedule.overcommit,
        dvfs_mode: DvfsMode::Static,
        period_samples: PERIOD,
        reference: Reference::Peak,
        dynamic_headroom: 0.25,
        default_demand: 2.0,
        sample_dt_s: 5.0,
        max_deferred: 1024,
    })
    .expect("valid config");
    let mut sink = RepackLog::default();
    for k in 0..TOTAL {
        for (id, plan) in plans.iter().enumerate() {
            if plan.departure == Some(k) {
                controller.depart(id).expect("scheduled departure");
            }
        }
        for (id, plan) in plans.iter().enumerate() {
            if plan.arrival == k {
                let horizon = plan.departure.unwrap_or(TOTAL);
                let trace = draw_trace(&mut rng, horizon - k);
                controller
                    .arrive(id, trace, plan.departure.map(|d| d - k), &mut sink)
                    .expect("scheduled arrival");
            }
        }
        controller.tick(&mut sink).expect("tick");
    }
    sink
}

/// A deterministic smoke of the harness itself: the drawn schedules
/// really are departure-heavy (and violation-prone) enough to arm and
/// fire the fragmentation trigger *and* the QoS guard somewhere in the
/// seed range the proptests sweep — otherwise the two "fires iff"
/// branches would be vacuous.
#[test]
fn fragmentation_and_qos_repacks_actually_happen_in_the_harness() {
    let fleet = uniform_fleet();
    let frag = (0..64u64).any(|seed| {
        smoke_run(
            seed,
            &fleet,
            Schedule::plain(RepackTrigger::Fragmentation { slack: 1 }),
        )
        .frag_fired()
            > 0
    });
    assert!(
        frag,
        "no seed in 0..64 ever fired a fragmentation re-pack — the harness lost its teeth"
    );
    let guarded = Schedule {
        trigger: RepackTrigger::Fragmentation { slack: 1 },
        guard: Some(QosGuard {
            violation_ratio: 0.10,
        }),
        adaptive_slack_max: None,
        overcommit: None,
    };
    let qos = (0..64u64).any(|seed| smoke_run(seed, &fleet, guarded).qos_fired() > 0);
    assert!(
        qos,
        "no seed in 0..64 ever fired a QoS-guard re-pack — the guard axis is vacuous"
    );
}

/// Replays the overcommit schedule once and reports whether any
/// admission landed a multi-VM server past *plain* capacity — i.e. a
/// genuine correlation-gap bet, not just a margin that never mattered.
fn overcommit_bet_happened(seed: u64, fleet: &ServerFleet) -> bool {
    let schedule = Schedule {
        trigger: RepackTrigger::Fragmentation { slack: 1 },
        guard: Some(QosGuard {
            violation_ratio: 0.10,
        }),
        adaptive_slack_max: None,
        overcommit: Some(OvercommitConfig {
            margin: 0.15,
            max_margin: 0.25,
        }),
    };
    let mut rng = SimRng::new(seed);
    let plans = draw_plans(&mut rng);
    let mut controller = DatacenterController::new(harness_config(
        fleet,
        Policy::Proposed(Default::default()),
        schedule,
        DvfsMode::Static,
    ))
    .expect("valid config");
    let mut sink = RepackLog::default();
    let mut bet = false;
    for k in 0..TOTAL {
        for (id, plan) in plans.iter().enumerate() {
            if plan.departure == Some(k) {
                controller.depart(id).expect("scheduled departure");
            }
        }
        for (id, plan) in plans.iter().enumerate() {
            if plan.arrival == k {
                let horizon = plan.departure.unwrap_or(TOTAL);
                let trace = draw_trace(&mut rng, horizon - k);
                controller
                    .arrive(id, trace, plan.departure.map(|d| d - k), &mut sink)
                    .expect("scheduled arrival");
                let placement = controller.placement();
                // A deferred arrival (tight fleet full) is no bet.
                if let Some(s) = placement.server_of(id) {
                    let members = &placement.servers()[s];
                    if members.len() >= 2 {
                        let demands = controller.predicted_vms();
                        let load: f64 = members.iter().map(|&i| demands[i].demand).sum();
                        let cores = fleet.classes()[placement.classes()[s]].cores();
                        if load > cores + FIT_EPS {
                            bet = true;
                        }
                    }
                }
            }
        }
        controller.tick(&mut sink).expect("tick");
    }
    bet
}

/// The overcommit axis has teeth: somewhere in the seed range the
/// proptests sweep, an admission actually crosses plain capacity on the
/// strength of the margin — otherwise the margin-bounded admission
/// invariant would be vacuous.
#[test]
fn overcommit_admissions_actually_happen_in_the_harness() {
    // A deliberately tight fleet: half the uniform harness fleet, so
    // plain capacity runs out and the margin path gets exercised.
    let fleet = ServerFleet::uniform(4, 8.0, LinearPowerModel::xeon_e5410()).expect("valid fleet");
    let hit = (0..64u64).any(|seed| overcommit_bet_happened(seed, &fleet));
    assert!(
        hit,
        "no seed in 0..64 ever admitted past plain capacity — the overcommit axis is vacuous"
    );
}
