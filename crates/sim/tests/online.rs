//! Online-controller acceptance: the batch≡online equivalence property
//! and churn behaviour.
//!
//! The redesign's contract is that `Scenario::run()` — now a thin
//! driver over [`DatacenterController`] — and an explicit lifecycle
//! where every VM arrives at t = 0 and never departs produce **the
//! same `SimReport`, field for field**, for all five policies. Churn
//! tests then exercise what the batch API could never express:
//! mid-period arrivals admitted through the incremental single-VM
//! placement, departures powering servers off, and streaming metric
//! sinks.
//!
//! [`DatacenterController`]: cavm_sim::DatacenterController

use cavm_core::dvfs::DvfsMode;
use cavm_sim::{Policy, ReportSink, ScenarioBuilder, SimReport};
use cavm_workload::datacenter::DatacenterTraceBuilder;
use cavm_workload::lifecycle::{
    ArrivalProcess, Lifecycle, LifecycleBuilder, LifecycleEntry, LifetimeModel,
};
use proptest::prelude::*;

fn fleet(vms: usize, hours: f64, seed: u64) -> cavm_workload::datacenter::VmFleet {
    DatacenterTraceBuilder::new(vms)
        .groups((vms / 3).max(1))
        .seed(seed)
        .duration_hours(hours)
        .build()
        .unwrap()
}

fn five_policies() -> [Policy; 5] {
    [
        Policy::Bfd,
        Policy::Ffd,
        Policy::Pcp {
            envelope_percentile: 90.0,
            affinity_threshold: 0.2,
        },
        Policy::SuperVm {
            min_pair_cost: 1.25,
        },
        Policy::Proposed(Default::default()),
    ]
}

proptest! {
    /// A lifecycle where every VM arrives at t = 0 and never departs is
    /// indistinguishable from the batch replay — identical `SimReport`s
    /// (PartialEq covers energy bits, violations, migrations, periods,
    /// class breakdowns and histograms) for all five policies, static
    /// and dynamic DVFS.
    #[test]
    fn batch_equals_online_when_everyone_arrives_at_t0(
        seed in 0u32..1000,
        vms in 5usize..10,
        dynamic in any::<bool>()
    ) {
        let traces = fleet(vms, 2.0, u64::from(seed));
        let horizon = traces.vms()[0].fine.len();
        let mode = if dynamic {
            DvfsMode::Dynamic { interval_samples: 12 }
        } else {
            DvfsMode::Static
        };
        for policy in five_policies() {
            let batch: SimReport = ScenarioBuilder::new(traces.clone())
                .servers(2 * vms)
                .policy(policy)
                .dvfs_mode(mode)
                .build()
                .unwrap()
                .run()
                .unwrap();
            let online: SimReport = ScenarioBuilder::new(traces.clone())
                .servers(2 * vms)
                .policy(policy)
                .dvfs_mode(mode)
                .lifecycle(Lifecycle::all_at_start(vms, horizon).unwrap())
                .build()
                .unwrap()
                .run()
                .unwrap();
            prop_assert_eq!(&batch, &online, "{} diverged under churn-free lifecycle", batch.policy);
            prop_assert_eq!(batch.online_admissions, 0);
        }
    }
}

/// A deterministic churn schedule over 4 one-hour periods: two VMs up
/// front, the rest trickling in mid-period, some leaving early.
fn churn_lifecycle(vms: usize, horizon: usize) -> Lifecycle {
    let entries = (0..vms)
        .map(|id| {
            let arrival_sample = if id < 2 { 0 } else { (id - 1) * 300 + 37 };
            let departure_sample = (id % 3 == 1).then(|| (arrival_sample + 1500).min(horizon - 1));
            LifecycleEntry {
                id,
                arrival_sample,
                departure_sample,
            }
        })
        .collect();
    Lifecycle::from_entries(entries, horizon).unwrap()
}

#[test]
fn churn_exercises_the_incremental_admit_path() {
    let traces = fleet(9, 4.0, 11);
    let horizon = traces.vms()[0].fine.len();
    let lifecycle = churn_lifecycle(9, horizon);
    assert!(!lifecycle.is_batch_equivalent());
    for policy in five_policies() {
        let mut sink = ReportSink::new();
        ScenarioBuilder::new(traces.clone())
            .servers(12)
            .policy(policy)
            .lifecycle(lifecycle.clone())
            .build()
            .unwrap()
            .run_with_sink(&mut sink)
            .unwrap();
        let admissions = sink.admissions();
        let report = sink.into_report().unwrap();
        // Mid-period arrivals were admitted without a re-pack.
        assert!(
            report.online_admissions > 0,
            "{}: no incremental admissions under churn",
            report.policy
        );
        assert_eq!(admissions, report.online_admissions, "{}", report.policy);
        assert!(report.energy.joules() > 0.0, "{}", report.policy);
        assert_eq!(report.periods.len(), 4, "{}", report.policy);
        // Per-class tallies still reassemble the totals under churn.
        let class_joules: f64 = report.classes.iter().map(|c| c.energy.joules()).sum();
        assert!(
            (class_joules - report.energy.joules()).abs() < 1e-6,
            "{}",
            report.policy
        );
        let class_violations: usize = report.classes.iter().map(|c| c.violation_instances).sum();
        assert_eq!(
            class_violations, report.violation_instances,
            "{}",
            report.policy
        );
    }
}

#[test]
fn departures_reduce_load_on_later_periods() {
    // All nine VMs start together; six leave after the first period.
    let traces = fleet(9, 4.0, 7);
    let horizon = traces.vms()[0].fine.len();
    let entries = (0..9)
        .map(|id| LifecycleEntry {
            id,
            arrival_sample: 0,
            departure_sample: (id >= 3).then_some(730),
        })
        .collect();
    let lifecycle = Lifecycle::from_entries(entries, horizon).unwrap();
    let report = ScenarioBuilder::new(traces.clone())
        .servers(12)
        .lifecycle(lifecycle)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let full = ScenarioBuilder::new(traces)
        .servers(12)
        .build()
        .unwrap()
        .run()
        .unwrap();
    // Later periods pack only the three survivors.
    let last = report.periods.last().unwrap();
    assert!(
        last.servers_used <= full.periods.last().unwrap().servers_used,
        "fewer tenants must not need more servers"
    );
    assert!(
        report.energy.joules() < full.energy.joules(),
        "a mostly-departed datacenter must burn less energy"
    );
}

#[test]
fn streamed_events_are_consistent_under_churn() {
    let traces = fleet(8, 3.0, 3);
    let horizon = traces.vms()[0].fine.len();
    let lifecycle = LifecycleBuilder::new(8, horizon)
        .seed(5)
        .arrivals(ArrivalProcess::Poisson {
            mean_gap_samples: 150.0,
        })
        .lifetimes(LifetimeModel::Uniform {
            min_samples: 720,
            max_samples: 1800,
        })
        .build()
        .unwrap();
    let mut sink = ReportSink::new();
    ScenarioBuilder::new(traces)
        .servers(10)
        .policy(Policy::Proposed(Default::default()))
        .lifecycle(lifecycle)
        .build()
        .unwrap()
        .run_with_sink(&mut sink)
        .unwrap();
    let periods = sink.periods().to_vec();
    let migrations = sink.migrations();
    let violations = sink.violations();
    let report = sink.into_report().unwrap();
    assert_eq!(periods, report.periods);
    assert_eq!(migrations, report.total_migrations());
    assert_eq!(violations, report.violation_instances);
}

#[test]
fn empty_first_period_is_survivable_for_every_policy() {
    // Nobody is live during period 0; the first VMs arrive exactly at
    // the period-1 boundary and later. PCP in particular must fall
    // back to its degenerate single cluster instead of reading an
    // empty history window.
    let traces = fleet(6, 4.0, 19);
    let horizon = traces.vms()[0].fine.len();
    let entries = (0..6)
        .map(|id| LifecycleEntry {
            id,
            arrival_sample: 720 + id * 211,
            departure_sample: None,
        })
        .collect();
    let lifecycle = Lifecycle::from_entries(entries, horizon).unwrap();
    for policy in five_policies() {
        let report = ScenarioBuilder::new(traces.clone())
            .servers(10)
            .policy(policy)
            .lifecycle(lifecycle.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.periods.len(), 4, "{}", report.policy);
        assert_eq!(report.periods[0].servers_used, 0, "{}", report.policy);
        assert!(report.periods[1].servers_used > 0, "{}", report.policy);
        assert!(report.energy.joules() > 0.0, "{}", report.policy);
    }
}

#[test]
fn lifecycle_validation_happens_at_build_time() {
    let traces = fleet(4, 2.0, 1);
    let horizon = traces.vms()[0].fine.len();
    // Wrong horizon.
    let wrong = Lifecycle::all_at_start(4, horizon + 1).unwrap();
    assert!(ScenarioBuilder::new(traces.clone())
        .lifecycle(wrong)
        .build()
        .is_err());
    // Foreign VM id.
    let foreign = Lifecycle::from_entries(
        vec![LifecycleEntry {
            id: 9,
            arrival_sample: 0,
            departure_sample: None,
        }],
        horizon,
    )
    .unwrap();
    assert!(ScenarioBuilder::new(traces)
        .lifecycle(foreign)
        .build()
        .is_err());
}
