//! Online-controller acceptance: the batch≡online equivalence property
//! and churn behaviour.
//!
//! The redesign's contract is that `Scenario::run()` — now a thin
//! driver over [`DatacenterController`] — and an explicit lifecycle
//! where every VM arrives at t = 0 and never departs produce **the
//! same `SimReport`, field for field**, for all five policies. Churn
//! tests then exercise what the batch API could never express:
//! mid-period arrivals admitted through the incremental single-VM
//! placement, departures powering servers off, and streaming metric
//! sinks.
//!
//! [`DatacenterController`]: cavm_sim::DatacenterController

use cavm_core::dvfs::DvfsMode;
use cavm_sim::{Policy, RepackTrigger, ReportSink, ScenarioBuilder, SimReport};
use cavm_workload::datacenter::DatacenterTraceBuilder;
use cavm_workload::lifecycle::{
    ArrivalProcess, Lifecycle, LifecycleBuilder, LifecycleEntry, LifetimeModel,
};
use proptest::prelude::*;

fn fleet(vms: usize, hours: f64, seed: u64) -> cavm_workload::datacenter::VmFleet {
    DatacenterTraceBuilder::new(vms)
        .groups((vms / 3).max(1))
        .seed(seed)
        .duration_hours(hours)
        .build()
        .unwrap()
}

fn five_policies() -> [Policy; 5] {
    [
        Policy::Bfd,
        Policy::Ffd,
        Policy::Pcp {
            envelope_percentile: 90.0,
            affinity_threshold: 0.2,
        },
        Policy::SuperVm {
            min_pair_cost: 1.25,
        },
        Policy::Proposed(Default::default()),
    ]
}

proptest! {
    /// A lifecycle where every VM arrives at t = 0 and never departs is
    /// indistinguishable from the batch replay — identical `SimReport`s
    /// (PartialEq covers energy bits, violations, migrations, periods,
    /// class breakdowns and histograms) for all five policies, static
    /// and dynamic DVFS. The online side spells the re-pack schedule
    /// out as an explicit `RepackTrigger::Periodic`, pinning the
    /// trigger's default path to the batch engine bit-for-bit.
    #[test]
    fn batch_equals_online_when_everyone_arrives_at_t0(
        seed in 0u32..1000,
        vms in 5usize..10,
        dynamic in any::<bool>()
    ) {
        let traces = fleet(vms, 2.0, u64::from(seed));
        let horizon = traces.vms()[0].fine.len();
        let mode = if dynamic {
            DvfsMode::Dynamic { interval_samples: 12 }
        } else {
            DvfsMode::Static
        };
        for policy in five_policies() {
            let batch: SimReport = ScenarioBuilder::new(traces.clone())
                .servers(2 * vms)
                .policy(policy)
                .dvfs_mode(mode)
                .build()
                .unwrap()
                .run()
                .unwrap();
            let online: SimReport = ScenarioBuilder::new(traces.clone())
                .servers(2 * vms)
                .policy(policy)
                .dvfs_mode(mode)
                .repack_trigger(RepackTrigger::Periodic)
                .lifecycle(Lifecycle::all_at_start(vms, horizon).unwrap())
                .build()
                .unwrap()
                .run()
                .unwrap();
            prop_assert_eq!(&batch, &online, "{} diverged under churn-free lifecycle", batch.policy);
            prop_assert_eq!(batch.online_admissions, 0);
            prop_assert_eq!(online.offcycle_repacks, 0);
        }
    }
}

/// A deterministic churn schedule over 4 one-hour periods: two VMs up
/// front, the rest trickling in mid-period, some leaving early.
fn churn_lifecycle(vms: usize, horizon: usize) -> Lifecycle {
    let entries = (0..vms)
        .map(|id| {
            let arrival_sample = if id < 2 { 0 } else { (id - 1) * 300 + 37 };
            let departure_sample = (id % 3 == 1).then(|| (arrival_sample + 1500).min(horizon - 1));
            LifecycleEntry {
                id,
                arrival_sample,
                departure_sample,
            }
        })
        .collect();
    Lifecycle::from_entries(entries, horizon).unwrap()
}

#[test]
fn churn_exercises_the_incremental_admit_path() {
    let traces = fleet(9, 4.0, 11);
    let horizon = traces.vms()[0].fine.len();
    let lifecycle = churn_lifecycle(9, horizon);
    assert!(!lifecycle.is_batch_equivalent());
    for policy in five_policies() {
        let mut sink = ReportSink::new();
        ScenarioBuilder::new(traces.clone())
            .servers(12)
            .policy(policy)
            .lifecycle(lifecycle.clone())
            .build()
            .unwrap()
            .run_with_sink(&mut sink)
            .unwrap();
        let admissions = sink.admissions();
        let report = sink.into_report().unwrap();
        // Mid-period arrivals were admitted without a re-pack.
        assert!(
            report.online_admissions > 0,
            "{}: no incremental admissions under churn",
            report.policy
        );
        assert_eq!(admissions, report.online_admissions, "{}", report.policy);
        assert!(report.energy.joules() > 0.0, "{}", report.policy);
        assert_eq!(report.periods.len(), 4, "{}", report.policy);
        // Per-class tallies still reassemble the totals under churn.
        let class_joules: f64 = report.classes.iter().map(|c| c.energy.joules()).sum();
        assert!(
            (class_joules - report.energy.joules()).abs() < 1e-6,
            "{}",
            report.policy
        );
        let class_violations: usize = report.classes.iter().map(|c| c.violation_instances).sum();
        assert_eq!(
            class_violations, report.violation_instances,
            "{}",
            report.policy
        );
    }
}

#[test]
fn departures_reduce_load_on_later_periods() {
    // All nine VMs start together; six leave after the first period.
    let traces = fleet(9, 4.0, 7);
    let horizon = traces.vms()[0].fine.len();
    let entries = (0..9)
        .map(|id| LifecycleEntry {
            id,
            arrival_sample: 0,
            departure_sample: (id >= 3).then_some(730),
        })
        .collect();
    let lifecycle = Lifecycle::from_entries(entries, horizon).unwrap();
    let report = ScenarioBuilder::new(traces.clone())
        .servers(12)
        .lifecycle(lifecycle)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let full = ScenarioBuilder::new(traces)
        .servers(12)
        .build()
        .unwrap()
        .run()
        .unwrap();
    // Later periods pack only the three survivors.
    let last = report.periods.last().unwrap();
    assert!(
        last.servers_used <= full.periods.last().unwrap().servers_used,
        "fewer tenants must not need more servers"
    );
    assert!(
        report.energy.joules() < full.energy.joules(),
        "a mostly-departed datacenter must burn less energy"
    );
}

#[test]
fn streamed_events_are_consistent_under_churn() {
    let traces = fleet(8, 3.0, 3);
    let horizon = traces.vms()[0].fine.len();
    let lifecycle = LifecycleBuilder::new(8, horizon)
        .seed(5)
        .arrivals(ArrivalProcess::Poisson {
            mean_gap_samples: 150.0,
        })
        .lifetimes(LifetimeModel::Uniform {
            min_samples: 720,
            max_samples: 1800,
        })
        .build()
        .unwrap();
    let mut sink = ReportSink::new();
    ScenarioBuilder::new(traces)
        .servers(10)
        .policy(Policy::Proposed(Default::default()))
        .lifecycle(lifecycle)
        .build()
        .unwrap()
        .run_with_sink(&mut sink)
        .unwrap();
    let periods = sink.periods().to_vec();
    let migrations = sink.migrations();
    let violations = sink.violations();
    let report = sink.into_report().unwrap();
    assert_eq!(periods, report.periods);
    assert_eq!(migrations, report.total_migrations());
    assert_eq!(violations, report.violation_instances);
}

#[test]
fn empty_first_period_is_survivable_for_every_policy() {
    // Nobody is live during period 0; the first VMs arrive exactly at
    // the period-1 boundary and later. PCP in particular must fall
    // back to its degenerate single cluster instead of reading an
    // empty history window.
    let traces = fleet(6, 4.0, 19);
    let horizon = traces.vms()[0].fine.len();
    let entries = (0..6)
        .map(|id| LifecycleEntry {
            id,
            arrival_sample: 720 + id * 211,
            departure_sample: None,
        })
        .collect();
    let lifecycle = Lifecycle::from_entries(entries, horizon).unwrap();
    for policy in five_policies() {
        let report = ScenarioBuilder::new(traces.clone())
            .servers(10)
            .policy(policy)
            .lifecycle(lifecycle.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.periods.len(), 4, "{}", report.policy);
        assert_eq!(report.periods[0].servers_used, 0, "{}", report.policy);
        assert!(report.periods[1].servers_used > 0, "{}", report.policy);
        assert!(report.energy.joules() > 0.0, "{}", report.policy);
    }
}

#[test]
fn vacated_servers_stay_as_eligible_as_fresh_ones_for_open_ended_arrivals() {
    // vm0/vm1 (bounded leases) share server 0, vm2 (open-ended) sits
    // on server 1. Once vm0 and vm1 depart, server 0 is empty —
    // *drained*, not *draining* — so a later open-ended arrival must
    // admit exactly where the lease-blind rule would: first fit picks
    // the vacated server 0, not the busier server 1. (Regression: an
    // empty slot once read a zero drain horizon and was deprioritized
    // even with no lease information on the arrival.)
    use cavm_power::LinearPowerModel;
    use cavm_sim::{ControllerConfig, DatacenterController};
    use cavm_trace::{Reference, TimeSeries};

    const PERIOD: usize = 60;
    let trace = |len: usize| TimeSeries::new(5.0, vec![3.0; len]).unwrap();
    let mut controller = DatacenterController::new(ControllerConfig {
        server_fleet: cavm_core::fleet::ServerFleet::uniform(
            4,
            8.0,
            LinearPowerModel::xeon_e5410(),
        )
        .unwrap(),
        policy: Policy::Ffd,
        repack_trigger: RepackTrigger::Periodic,
        qos_guard: None,
        adaptive_slack_max: None,
        overcommit: None,
        dvfs_mode: cavm_core::dvfs::DvfsMode::Static,
        period_samples: PERIOD,
        reference: Reference::Peak,
        dynamic_headroom: 0.25,
        default_demand: 3.0,
        sample_dt_s: 5.0,
        max_deferred: 1024,
    })
    .unwrap();
    let mut sink = ReportSink::new();
    controller
        .arrive(0, trace(2 * PERIOD), Some(30), &mut sink)
        .unwrap();
    controller
        .arrive(1, trace(2 * PERIOD), Some(30), &mut sink)
        .unwrap();
    controller
        .arrive(2, trace(2 * PERIOD), None, &mut sink)
        .unwrap();
    controller.tick(&mut sink).unwrap();
    assert_eq!(controller.placement().server_of(0), Some(0));
    assert_eq!(controller.placement().server_of(1), Some(0));
    assert_eq!(controller.placement().server_of(2), Some(1));
    controller.depart(0).unwrap();
    controller.depart(1).unwrap();
    controller.tick(&mut sink).unwrap();
    assert_eq!(controller.placement().active_server_count(), 1);
    controller
        .arrive(3, trace(2 * PERIOD), None, &mut sink)
        .unwrap();
    assert_eq!(
        controller.placement().server_of(3),
        Some(0),
        "first fit must re-use the vacated slot, exactly as the lease-blind rule would"
    );
}

#[test]
fn hybrid_trigger_fires_offcycle_repacks_under_departure_churn() {
    // Four ~3.9-core VMs pack two per 8-core server under every
    // capacity-respecting policy. Departing one tenant from *each*
    // server mid-period leaves two half-empty servers whose remaining
    // 7.8 cores fit into one — the Eqn (3) bound drops to 1 while two
    // stay active, so a slack-1 trigger must consolidate off-cycle.
    use cavm_power::LinearPowerModel;
    use cavm_sim::{ControllerConfig, DatacenterController};
    use cavm_trace::{Reference, TimeSeries};

    const PERIOD: usize = 60;
    let trace = |vm: usize, len: usize| {
        let values = (0..len)
            .map(|t| if (t + vm).is_multiple_of(4) { 3.5 } else { 3.9 })
            .collect();
        TimeSeries::new(5.0, values).unwrap()
    };
    for policy in [
        Policy::Bfd,
        Policy::Ffd,
        Policy::Proposed(Default::default()),
    ] {
        let mut controller = DatacenterController::new(ControllerConfig {
            server_fleet: cavm_core::fleet::ServerFleet::uniform(
                6,
                8.0,
                LinearPowerModel::xeon_e5410(),
            )
            .unwrap(),
            policy,
            repack_trigger: RepackTrigger::Hybrid { slack: 1 },
            qos_guard: None,
            adaptive_slack_max: None,
            overcommit: None,
            dvfs_mode: cavm_core::dvfs::DvfsMode::Static,
            period_samples: PERIOD,
            reference: Reference::Peak,
            dynamic_headroom: 0.25,
            default_demand: 3.9,
            sample_dt_s: 5.0,
            max_deferred: 1024,
        })
        .unwrap();
        let mut sink = ReportSink::new();
        for id in 0..4 {
            controller
                .arrive(id, trace(id, 3 * PERIOD), None, &mut sink)
                .unwrap();
        }
        // Period 0 and the first tick of period 1.
        for _ in 0..=PERIOD {
            controller.tick(&mut sink).unwrap();
        }
        let placement = controller.placement();
        assert_eq!(
            placement.active_server_count(),
            2,
            "{}: 4×3.9 cores must pack onto two servers",
            policy.name()
        );
        // One departure from each server strands both half-empty.
        let victims: Vec<usize> = placement
            .servers()
            .iter()
            .filter(|m| !m.is_empty())
            .map(|m| m[0])
            .collect();
        assert_eq!(victims.len(), 2, "{}", policy.name());
        for id in victims {
            controller.depart(id).unwrap();
        }
        assert!(controller.repack_armed(), "{}", policy.name());
        assert_eq!(controller.offcycle_repacks(), 0, "{}", policy.name());
        controller.tick(&mut sink).unwrap();
        assert_eq!(
            controller.offcycle_repacks(),
            1,
            "{}: the armed slack-1 trigger must fire",
            policy.name()
        );
        assert_eq!(
            controller.placement().active_server_count(),
            1,
            "{}: the re-pack must consolidate the survivors",
            policy.name()
        );
        let repack = *sink.repacks().last().unwrap();
        assert_eq!(
            repack.reason,
            cavm_sim::RepackReason::Fragmentation {
                estimate: 1,
                active: 2
            },
            "{}",
            policy.name()
        );
        assert_eq!(repack.servers_after, 1, "{}", policy.name());
        // Both survivors moved or one did — either way the count is
        // consistent with the placement diff the sink streamed.
        assert!(repack.migrations >= 1, "{}", policy.name());
    }
}

#[test]
fn fragmentation_only_schedule_completes_and_consolidates() {
    // The pure event-driven schedule: boundaries keep the placement,
    // so all re-packs after the initial one are fragmentation-fired.
    let traces = fleet(9, 4.0, 11);
    let horizon = traces.vms()[0].fine.len();
    let lifecycle = churn_lifecycle(9, horizon);
    for policy in five_policies() {
        let mut sink = ReportSink::new();
        ScenarioBuilder::new(traces.clone())
            .servers(12)
            .policy(policy)
            .repack_trigger(RepackTrigger::Fragmentation { slack: 1 })
            .lifecycle(lifecycle.clone())
            .build()
            .unwrap()
            .run_with_sink(&mut sink)
            .unwrap();
        let periodic_repacks = sink.repacks().len() - sink.offcycle_repacks();
        let report = sink.into_report().unwrap();
        assert!(
            periodic_repacks <= 1,
            "{}: fragmentation-only ran {periodic_repacks} boundary re-packs",
            report.policy
        );
        assert_eq!(report.periods.len(), 4, "{}", report.policy);
        assert!(report.energy.joules() > 0.0, "{}", report.policy);
    }
}

#[test]
fn departures_exactly_on_period_boundaries_are_clean() {
    // Six of nine VMs end their lease exactly at the period-1 boundary
    // (sample 720): the departure is processed while the controller is
    // between periods, so the next UPDATE must simply drop them — no
    // eviction, no double-count, correct later-period loads.
    let traces = fleet(9, 4.0, 7);
    let horizon = traces.vms()[0].fine.len();
    let entries = (0..9)
        .map(|id| LifecycleEntry {
            id,
            arrival_sample: 0,
            departure_sample: (id >= 3).then_some(720),
        })
        .collect();
    let lifecycle = Lifecycle::from_entries(entries, horizon).unwrap();
    for trigger in [
        RepackTrigger::Periodic,
        RepackTrigger::Fragmentation { slack: 1 },
        RepackTrigger::Hybrid { slack: 1 },
    ] {
        let report = ScenarioBuilder::new(traces.clone())
            .servers(12)
            .repack_trigger(trigger)
            .lifecycle(lifecycle.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.periods.len(), 4, "{trigger:?}");
        // Periods 1.. pack only the three survivors.
        for p in &report.periods[1..] {
            assert!(
                p.servers_used <= report.periods[0].servers_used,
                "{trigger:?}: three survivors need no more servers than nine tenants"
            );
        }
        // A boundary departure is not an eviction: nothing was armed,
        // so a fragmentation trigger fires (if at all) only after the
        // boundary UPDATE already compacted the fleet.
        assert!(report.energy.joules() > 0.0, "{trigger:?}");
    }
}

#[test]
fn lifecycle_validation_happens_at_build_time() {
    let traces = fleet(4, 2.0, 1);
    let horizon = traces.vms()[0].fine.len();
    // Wrong horizon.
    let wrong = Lifecycle::all_at_start(4, horizon + 1).unwrap();
    assert!(ScenarioBuilder::new(traces.clone())
        .lifecycle(wrong)
        .build()
        .is_err());
    // Foreign VM id.
    let foreign = Lifecycle::from_entries(
        vec![LifecycleEntry {
            id: 9,
            arrival_sample: 0,
            departure_sample: None,
        }],
        horizon,
    )
    .unwrap();
    assert!(ScenarioBuilder::new(traces)
        .lifecycle(foreign)
        .build()
        .is_err());
}

#[test]
fn qos_guard_repacks_away_drifted_overcommit_mid_period() {
    // Two 4.5-core tenants against a 2.0-core default prediction: the
    // first batch pass packs both onto one 8-core server, and every
    // sample violates (9 > 8). Without a guard the fragmentation-only
    // schedule never corrects this; with one, the violation ratio
    // crossing the threshold fires an off-cycle re-pack whose
    // refreshed (observed-peak) predictions split the pair.
    use cavm_power::LinearPowerModel;
    use cavm_sim::{ControllerConfig, DatacenterController, QosGuard, RepackReason};
    use cavm_trace::{Reference, TimeSeries};

    const PERIOD: usize = 60;
    let config = |guard: Option<QosGuard>| ControllerConfig {
        server_fleet: cavm_core::fleet::ServerFleet::uniform(
            4,
            8.0,
            LinearPowerModel::xeon_e5410(),
        )
        .unwrap(),
        policy: Policy::Bfd,
        repack_trigger: RepackTrigger::Fragmentation { slack: 1 },
        qos_guard: guard,
        adaptive_slack_max: None,
        overcommit: None,
        dvfs_mode: cavm_core::dvfs::DvfsMode::Static,
        period_samples: PERIOD,
        reference: Reference::Peak,
        dynamic_headroom: 0.25,
        default_demand: 2.0,
        sample_dt_s: 5.0,
        max_deferred: 1024,
    };
    let drive = |guard: Option<QosGuard>| {
        let mut controller = DatacenterController::new(config(guard)).unwrap();
        let mut sink = ReportSink::new();
        for id in 0..2 {
            let trace = TimeSeries::new(5.0, vec![4.5; 2 * PERIOD]).unwrap();
            controller.arrive(id, trace, None, &mut sink).unwrap();
        }
        for _ in 0..PERIOD {
            controller.tick(&mut sink).unwrap();
        }
        (controller, sink)
    };

    // Unguarded: a whole period of violations, still one server.
    let (unguarded, _) = drive(None);
    assert_eq!(unguarded.placement().active_server_count(), 1);
    assert_eq!(unguarded.offcycle_repacks(), 0);
    assert_eq!(unguarded.report().violation_instances, PERIOD);

    // Guarded at 10%: fires once the worst ratio crosses 0.1 (7
    // violations of 60), splits the pair, and violations stop.
    let guard = QosGuard {
        violation_ratio: 0.1,
    };
    let (guarded, sink) = drive(Some(guard));
    assert_eq!(
        guarded.placement().active_server_count(),
        2,
        "the refreshed predictions must split the overcommitted pair"
    );
    let qos_events: Vec<_> = sink
        .repacks()
        .iter()
        .filter(|e| matches!(e.reason, RepackReason::QosGuard { .. }))
        .collect();
    assert_eq!(qos_events.len(), 1, "one guard re-pack heals the server");
    let event = qos_events[0];
    assert_eq!(event.reason, RepackReason::QosGuard { violations: 7 });
    assert_eq!(event.sample, 7, "armed by violation 7, fired next tick");
    assert_eq!(event.servers_before, 1);
    assert_eq!(event.servers_after, 2);
    assert!(
        guarded.report().violation_instances < PERIOD / 4,
        "violations must stop after the guard re-pack"
    );
    // The healed period still reports the pre-re-pack worst ratio
    // through the folded floor.
    let report = guarded.report();
    assert!(report.periods[0].max_violation_ratio >= 7.0 / PERIOD as f64);
}

#[test]
fn boundary_capacity_check_force_repacks_overcommitted_servers() {
    // Two tenants whose 4.5-core peaks coincide only on the *last
    // three* samples of period 0: the running ratio never exceeds the
    // 4% threshold at any mid-period check (the guard evaluates one
    // tick after each violation, when the count is still 1 then 2),
    // so the mid-period guard stays quiet — but the period *ends* at
    // 3/60 = 5% > 4%, and the refreshed predictions (4.5 + 4.5 on 8
    // cores) overcommit the kept server. The guard's boundary
    // capacity check must catch exactly this breached-and-still-
    // overcommitted combination: trim the largest member off, re-admit
    // it onto a second server, and emit an `Overcommit` re-pack event
    // at the boundary.
    use cavm_power::LinearPowerModel;
    use cavm_sim::{ControllerConfig, DatacenterController, QosGuard, RepackReason};
    use cavm_trace::{Reference, TimeSeries};

    const PERIOD: usize = 60;
    let trace = || {
        let values = (0..3 * PERIOD)
            .map(|t| if (57..60).contains(&t) { 4.5 } else { 2.0 })
            .collect();
        TimeSeries::new(5.0, values).unwrap()
    };
    let mut controller = DatacenterController::new(ControllerConfig {
        server_fleet: cavm_core::fleet::ServerFleet::uniform(
            4,
            8.0,
            LinearPowerModel::xeon_e5410(),
        )
        .unwrap(),
        policy: Policy::Bfd,
        repack_trigger: RepackTrigger::Fragmentation { slack: 1 },
        qos_guard: Some(QosGuard {
            violation_ratio: 0.04,
        }),
        adaptive_slack_max: None,
        overcommit: None,
        dvfs_mode: cavm_core::dvfs::DvfsMode::Static,
        period_samples: PERIOD,
        reference: Reference::Peak,
        dynamic_headroom: 0.25,
        default_demand: 2.0,
        sample_dt_s: 5.0,
        max_deferred: 1024,
    })
    .unwrap();
    let mut sink = ReportSink::new();
    controller.arrive(0, trace(), None, &mut sink).unwrap();
    controller.arrive(1, trace(), None, &mut sink).unwrap();
    for _ in 0..PERIOD {
        controller.tick(&mut sink).unwrap();
    }
    assert_eq!(
        controller.placement().active_server_count(),
        1,
        "period 0 packs the pair on the 2.0-core default predictions"
    );
    assert_eq!(
        controller.report().violation_instances,
        3,
        "the tail peaks violate, crossing the threshold only at period end"
    );

    // The period-1 boundary keeps the placement but refreshes the
    // predictions to the observed 4.5-core peaks — overcommitted, and
    // the server has a violation record.
    controller.tick(&mut sink).unwrap();
    assert_eq!(
        controller.placement().active_server_count(),
        2,
        "the capacity check must split the violating overcommitted pair"
    );
    let overcommit: Vec<_> = sink
        .repacks()
        .iter()
        .filter(|e| matches!(e.reason, RepackReason::Overcommit { .. }))
        .collect();
    assert_eq!(overcommit.len(), 1);
    let event = overcommit[0];
    assert_eq!(event.reason, RepackReason::Overcommit { servers: 1 });
    assert_eq!(event.sample, PERIOD, "fires at the boundary tick");
    assert_eq!(event.servers_after, 2);
    assert_eq!(
        event.migrations, 1,
        "the trim moves exactly one of the pair"
    );
    // A boundary capacity check is not an off-cycle re-pack.
    assert_eq!(controller.offcycle_repacks(), 0);
    // Replaying period 1 on the split placement stays violation-free
    // (each server now hosts one 4.5-core-predicted tenant).
    for _ in 0..PERIOD {
        controller.tick(&mut sink).unwrap();
    }
    assert_eq!(controller.report().violation_instances, 3);
}

#[test]
fn trimmed_server_is_not_reovercommitted_until_its_hold_expires() {
    // The admit-then-trim ping-pong regression. Three tenants whose
    // 3.3-core peaks coincide only on each period's last three samples
    // pack onto one server on the 2.0-core default predictions; the
    // period ends at 3/60 = 5% > 4% (too late for the mid-period
    // guard), and the refreshed 3.3-core predictions leave the kept
    // server at 9.9 > 8 cores — the boundary capacity check trims one
    // tenant off. With deliberate overcommit configured, the trimmed
    // server (6.6 cores predicted) would immediately re-admit the next
    // mid-period arrival through the margin gate (8.6 <= 8 x 1.1)
    // and be re-trimmed a boundary later. The trim's revocation hold
    // must deny the slot its margin through the next period — and then
    // lapse, because the hold is per-incident, not a permanent
    // blacklist.
    use cavm_power::LinearPowerModel;
    use cavm_sim::{
        ControllerConfig, DatacenterController, OvercommitConfig, QosGuard, RepackReason,
    };
    use cavm_trace::{Reference, TimeSeries};

    const PERIOD: usize = 60;
    let trace = || {
        let values = (0..4 * PERIOD)
            .map(|t| if t % PERIOD >= 57 { 3.3 } else { 2.0 })
            .collect();
        TimeSeries::new(5.0, values).unwrap()
    };
    let mut controller = DatacenterController::new(ControllerConfig {
        server_fleet: cavm_core::fleet::ServerFleet::uniform(
            4,
            8.0,
            LinearPowerModel::xeon_e5410(),
        )
        .unwrap(),
        policy: Policy::Bfd,
        repack_trigger: RepackTrigger::Fragmentation { slack: 1 },
        qos_guard: Some(QosGuard {
            violation_ratio: 0.04,
        }),
        adaptive_slack_max: None,
        overcommit: Some(OvercommitConfig {
            margin: 0.15,
            max_margin: 0.25,
        }),
        dvfs_mode: cavm_core::dvfs::DvfsMode::Static,
        period_samples: PERIOD,
        reference: Reference::Peak,
        dynamic_headroom: 0.25,
        default_demand: 2.0,
        sample_dt_s: 5.0,
        max_deferred: 1024,
    })
    .unwrap();
    let mut sink = ReportSink::new();
    for id in 0..3 {
        controller.arrive(id, trace(), None, &mut sink).unwrap();
    }
    for _ in 0..PERIOD {
        controller.tick(&mut sink).unwrap();
    }
    assert_eq!(
        controller.placement().active_server_count(),
        1,
        "period 0 packs the trio on the 2.0-core default predictions"
    );

    // Boundary: evidence (5% > 4%) + overcommit (9.9 > 8) trims the
    // smallest set that restores plain capacity — one tenant — and
    // puts the slot under a revocation hold.
    controller.tick(&mut sink).unwrap();
    let overcommit_events = |sink: &ReportSink| {
        sink.repacks()
            .iter()
            .filter(|e| matches!(e.reason, RepackReason::Overcommit { .. }))
            .count()
    };
    assert_eq!(overcommit_events(&sink), 1, "one boundary trim");
    assert_eq!(controller.placement().active_server_count(), 2);
    let held: Vec<usize> = (0..4).filter(|&s| controller.overcommit_held(s)).collect();
    assert_eq!(held.len(), 1, "exactly the trimmed slot is held");
    let trimmed = held[0];
    let margins = controller.overcommit_margins().expect("overcommit is on");
    assert!(
        margins.iter().all(|&m| m > 0.0),
        "the hold revokes the slot's margin without zeroing the class controller"
    );

    // A mid-period arrival would margin-fit the trimmed server (6.6 +
    // 2.0 = 8.6 <= 8 x margin cap) and BFD would prefer it as the
    // fullest bin — the hold must turn it away to a plain-capacity
    // server.
    for _ in 0..5 {
        controller.tick(&mut sink).unwrap();
    }
    controller.arrive(3, trace(), None, &mut sink).unwrap();
    let landed = controller
        .placement()
        .server_of(3)
        .expect("three near-empty servers can host a 2-core tenant");
    assert_ne!(
        landed, trimmed,
        "a held server must not re-admit past plain capacity"
    );
    let load_on_trimmed: f64 = controller.placement().servers()[trimmed]
        .iter()
        .map(|&id| controller.predicted_vms()[id].demand)
        .sum();
    assert!(
        load_on_trimmed <= 8.0 + 1e-9,
        "the trimmed server stays within plain capacity while held"
    );

    // Two more boundaries: the split placement is violation-free, so
    // no further trim fires (no ping-pong) and the hold lapses.
    for _ in 0..2 * PERIOD + 1 {
        controller.tick(&mut sink).unwrap();
    }
    assert_eq!(
        overcommit_events(&sink),
        1,
        "the trim must not recur every boundary"
    );
    assert!(
        (0..4).all(|s| !controller.overcommit_held(s)),
        "the revocation hold expires after the following period"
    );
}

#[test]
fn buffered_sink_is_transparent_when_roomy_and_counts_drops_when_not() {
    use cavm_sim::Buffered;

    let traces = fleet(9, 4.0, 11);
    let horizon = traces.vms()[0].fine.len();
    let lifecycle = churn_lifecycle(9, horizon);
    let scenario = || {
        ScenarioBuilder::new(traces.clone())
            .servers(12)
            .policy(Policy::Proposed(Default::default()))
            .lifecycle(lifecycle.clone())
            .build()
            .unwrap()
    };

    // Roomy queue: the buffered stream folds back into exactly the
    // unbuffered report (both see zero drops).
    let mut plain = ReportSink::new();
    scenario().run_with_sink(&mut plain).unwrap();
    let plain_report = plain.into_report().unwrap();
    let mut roomy = Buffered::new(ReportSink::new(), 1 << 16);
    scenario().run_with_sink(&mut roomy).unwrap();
    assert_eq!(roomy.dropped(), 0);
    let roomy_report = roomy.into_inner().into_report().unwrap();
    assert_eq!(plain_report, roomy_report);

    // A one-slot queue overflows; the terminal report the inner sink
    // receives carries the exact drop count.
    let mut tight = Buffered::new(ReportSink::new(), 1);
    scenario().run_with_sink(&mut tight).unwrap();
    let dropped = tight.dropped();
    assert!(dropped > 0, "a one-slot queue must overflow under churn");
    let tight_report = tight.into_inner().into_report().unwrap();
    assert_eq!(tight_report.sink_dropped_events, dropped);
    // The report itself is the controller's, not reassembled from the
    // (lossy) stream: totals survive the drops.
    assert_eq!(tight_report.energy, plain_report.energy);
    assert_eq!(
        tight_report.violation_instances,
        plain_report.violation_instances
    );
}

#[test]
fn adaptive_slack_stays_within_bounds_and_streams_on_repacks() {
    use cavm_sim::QosGuard;

    let traces = fleet(9, 4.0, 11);
    let horizon = traces.vms()[0].fine.len();
    let lifecycle = churn_lifecycle(9, horizon);
    let mut sink = ReportSink::new();
    ScenarioBuilder::new(traces)
        .servers(12)
        .policy(Policy::Proposed(Default::default()))
        .repack_trigger(RepackTrigger::Hybrid { slack: 1 })
        .adaptive_slack_max(3)
        .qos_guard(QosGuard {
            violation_ratio: 0.25,
        })
        .lifecycle(lifecycle)
        .build()
        .unwrap()
        .run_with_sink(&mut sink)
        .unwrap();
    assert!(!sink.repacks().is_empty());
    for event in sink.repacks() {
        let slack = event
            .slack_after
            .expect("a fragmentation-dimension schedule streams its slack");
        assert!((1..=3).contains(&slack), "slack {slack} left [1, 3]");
    }
}

#[test]
fn guard_and_adaptive_knobs_are_validated_at_build_time() {
    use cavm_sim::QosGuard;

    let traces = fleet(4, 2.0, 1);
    let build = |f: fn(ScenarioBuilder) -> ScenarioBuilder| {
        f(ScenarioBuilder::new(traces.clone())).build().map(|_| ())
    };
    // Guard ratio must lie in (0, 1].
    assert!(build(|b| b.qos_guard(QosGuard {
        violation_ratio: 0.0
    }))
    .is_err());
    assert!(build(|b| b.qos_guard(QosGuard {
        violation_ratio: 1.5
    }))
    .is_err());
    assert!(build(|b| b.qos_guard(QosGuard {
        violation_ratio: f64::NAN
    }))
    .is_err());
    assert!(build(|b| b.qos_guard(QosGuard {
        violation_ratio: 1.0
    }))
    .is_ok());
    // Adaptive slack needs a fragmentation dimension and max ≥ slack.
    assert!(build(|b| b.adaptive_slack_max(3)).is_err());
    assert!(build(|b| b
        .repack_trigger(RepackTrigger::Hybrid { slack: 2 })
        .adaptive_slack_max(1))
    .is_err());
    assert!(build(|b| b
        .repack_trigger(RepackTrigger::Hybrid { slack: 2 })
        .adaptive_slack_max(2))
    .is_ok());
}

/// Records fault-path stream traffic while forwarding nothing else.
#[derive(Default)]
struct FaultLog {
    fails: Vec<(usize, usize, usize)>,
    recoveries: Vec<(usize, usize)>,
    admits: Vec<(usize, usize, usize)>,
    repacks: Vec<cavm_sim::RepackEvent>,
}

impl cavm_sim::MetricSink for FaultLog {
    fn on_server_fail(&mut self, sample: usize, server: usize, residents: usize) {
        self.fails.push((sample, server, residents));
    }

    fn on_server_recover(&mut self, sample: usize, server: usize) {
        self.recoveries.push((sample, server));
    }

    fn on_admit(&mut self, sample: usize, vm: usize, server: usize) {
        self.admits.push((sample, vm, server));
    }

    fn on_repack(&mut self, event: &cavm_sim::RepackEvent) {
        self.repacks.push(*event);
    }
}

fn fault_controller(
    servers: usize,
    max_deferred: usize,
    demand: f64,
) -> cavm_sim::DatacenterController {
    use cavm_power::LinearPowerModel;
    use cavm_sim::{ControllerConfig, DatacenterController};
    use cavm_trace::Reference;

    DatacenterController::new(ControllerConfig {
        server_fleet: cavm_core::fleet::ServerFleet::uniform(
            servers,
            8.0,
            LinearPowerModel::xeon_e5410(),
        )
        .unwrap(),
        policy: Policy::Ffd,
        repack_trigger: RepackTrigger::Periodic,
        qos_guard: None,
        adaptive_slack_max: None,
        overcommit: None,
        dvfs_mode: DvfsMode::Static,
        period_samples: 60,
        reference: Reference::Peak,
        dynamic_headroom: 0.25,
        default_demand: demand,
        sample_dt_s: 5.0,
        max_deferred,
    })
    .unwrap()
}

#[test]
fn single_server_failure_evacuates_residents_through_the_policy() {
    use cavm_sim::RepackReason;
    use cavm_trace::TimeSeries;

    let trace = || TimeSeries::new(5.0, vec![2.0; 180]).unwrap();
    let mut controller = fault_controller(4, 1024, 2.0);
    let mut sink = FaultLog::default();
    controller.arrive(0, trace(), None, &mut sink).unwrap();
    controller.arrive(1, trace(), None, &mut sink).unwrap();
    for _ in 0..3 {
        controller.tick(&mut sink).unwrap();
    }
    assert_eq!(controller.placement().server_of(0), Some(0));
    assert_eq!(controller.placement().server_of(1), Some(0));

    controller.server_fail(0, &mut sink).unwrap();
    // Both residents re-admitted through the policy, never onto the
    // failed server; health, counters and the stream all agree.
    assert!(controller.server_health()[0].is_failed());
    assert!(controller.placement().servers()[0].is_empty());
    assert_eq!(controller.placement().server_of(0), Some(1));
    assert_eq!(controller.placement().server_of(1), Some(1));
    assert_eq!(controller.server_failures(), 1);
    assert_eq!(controller.evacuations(), 2);
    assert_eq!(controller.deferred_vms(), 0);
    assert!(controller.degraded());
    assert_eq!(sink.fails, vec![(3, 0, 2)]);
    let evac: Vec<_> = sink
        .repacks
        .iter()
        .filter(|e| matches!(e.reason, RepackReason::Evacuation { .. }))
        .collect();
    assert_eq!(evac.len(), 1);
    assert_eq!(evac[0].reason, RepackReason::Evacuation { server: 0 });
    assert_eq!(evac[0].migrations, 2);
    // An evacuation is disaster response, not consolidation.
    assert_eq!(controller.offcycle_repacks(), 0);

    controller.server_recover(0, &mut sink).unwrap();
    assert!(controller.server_health()[0].is_healthy());
    assert!(!controller.degraded());
    assert_eq!(controller.server_recoveries(), 1);
    assert_eq!(sink.recoveries, vec![(3, 0)]);
    // The recovered slot is admissible again: a first-fit arrival
    // lands exactly where the lease-blind rule says — server 0.
    controller.arrive(2, trace(), None, &mut sink).unwrap();
    assert_eq!(controller.placement().server_of(2), Some(0));
}

#[test]
fn failure_with_no_spare_capacity_defers_and_drains_on_recovery() {
    use cavm_sim::RepackReason;
    use cavm_trace::TimeSeries;

    let trace = || TimeSeries::new(5.0, vec![3.0; 180]).unwrap();
    // Two 8-core servers, four 3-core tenants: 0,1 on s0 and 2,3 on
    // s1, nothing spare.
    let mut controller = fault_controller(2, 1024, 3.0);
    let mut sink = FaultLog::default();
    for id in 0..4 {
        controller.arrive(id, trace(), None, &mut sink).unwrap();
    }
    controller.tick(&mut sink).unwrap();
    assert_eq!(controller.placement().server_of(2), Some(1));
    assert_eq!(controller.placement().server_of(3), Some(1));

    controller.server_fail(1, &mut sink).unwrap();
    // No server can host the evacuees: graceful degradation queues
    // them instead of erroring the session.
    assert_eq!(controller.deferred_vms(), 2);
    assert_eq!(controller.deferred_ids(), vec![2, 3]);
    assert_eq!(controller.evacuations(), 0, "nobody actually moved");
    assert_eq!(controller.live_vms(), 4, "deferred VMs stay live");
    assert!(controller.degraded());
    let evac: Vec<_> = sink
        .repacks
        .iter()
        .filter(|e| matches!(e.reason, RepackReason::Evacuation { .. }))
        .collect();
    assert_eq!(evac.len(), 1);
    assert_eq!(evac[0].migrations, 0, "all residents deferred, none moved");

    // Mid-period ticks retry the queue; with the fleet still short it
    // stays put.
    controller.tick(&mut sink).unwrap();
    assert_eq!(controller.deferred_vms(), 2);

    // Recovery drains it: both land back on the repaired server as
    // online admissions.
    let admitted_before = controller.online_admissions();
    controller.server_recover(1, &mut sink).unwrap();
    assert_eq!(controller.deferred_vms(), 0);
    assert!(!controller.degraded());
    assert_eq!(controller.placement().server_of(2), Some(1));
    assert_eq!(controller.placement().server_of(3), Some(1));
    assert_eq!(controller.online_admissions(), admitted_before + 2);
    assert_eq!(
        sink.admits.iter().filter(|&&(_, vm, _)| vm >= 2).count(),
        2,
        "drained admissions stream like any other admission"
    );
    let report = {
        let mut end = cavm_sim::ReportSink::new();
        for _ in 0..120 {
            controller.tick(&mut end).unwrap();
        }
        controller.finish(&mut end).unwrap();
        controller.report()
    };
    assert_eq!(report.server_failures, 1);
    assert_eq!(report.evacuations, 0);
    assert_eq!(report.deferred_peak, 2);
}

#[test]
fn deferred_queue_overflow_rejects_the_failure_atomically() {
    use cavm_sim::SimError;
    use cavm_trace::TimeSeries;

    let trace = || TimeSeries::new(5.0, vec![3.0; 180]).unwrap();
    let mut controller = fault_controller(2, 1, 3.0);
    let mut sink = FaultLog::default();
    for id in 0..4 {
        controller.arrive(id, trace(), None, &mut sink).unwrap();
    }
    controller.tick(&mut sink).unwrap();

    // Failing s1 would need to defer both residents, but the queue
    // only holds one: the event is rejected before any state changes.
    let err = controller.server_fail(1, &mut sink).unwrap_err();
    assert_eq!(err, SimError::DeferredQueueFull { capacity: 1 });
    assert!(controller.server_health()[1].is_healthy());
    assert_eq!(controller.placement().server_of(2), Some(1));
    assert_eq!(controller.placement().server_of(3), Some(1));
    assert_eq!(controller.server_failures(), 0);
    assert_eq!(controller.deferred_vms(), 0);
    assert!(!controller.degraded());
    assert!(sink.fails.is_empty(), "a rejected failure streams nothing");
}

#[test]
fn malformed_event_sequences_yield_typed_errors() {
    use cavm_sim::{NullSink, SimError, VmEvent};
    use cavm_trace::TimeSeries;

    let trace = || TimeSeries::new(5.0, vec![2.0; 180]).unwrap();
    let mut controller = fault_controller(4, 1024, 2.0);
    let mut sink = NullSink;
    controller.arrive(0, trace(), None, &mut sink).unwrap();
    assert_eq!(
        controller.arrive(0, trace(), None, &mut sink).unwrap_err(),
        SimError::DuplicateVm { id: 0 }
    );
    assert_eq!(
        controller.depart(7).unwrap_err(),
        SimError::UnknownVm { id: 7 }
    );
    controller.depart(0).unwrap();
    assert_eq!(
        controller.depart(0).unwrap_err(),
        SimError::VmAlreadyDeparted { id: 0 }
    );
    controller.arrive(1, trace(), None, &mut sink).unwrap();
    controller.tick(&mut sink).unwrap();
    let provisioned = controller.placement().server_count();
    assert_eq!(
        controller.server_fail(99, &mut sink).unwrap_err(),
        SimError::UnknownServer {
            server: 99,
            servers: provisioned
        }
    );
    assert_eq!(
        controller.server_recover(0, &mut sink).unwrap_err(),
        SimError::ServerNotFailed { server: 0 }
    );
    controller.server_fail(0, &mut sink).unwrap();
    assert_eq!(
        controller.server_fail(0, &mut sink).unwrap_err(),
        SimError::ServerAlreadyFailed { server: 0 }
    );
    controller.server_recover(0, &mut sink).unwrap();
    controller.finish(&mut sink).unwrap();
    assert_eq!(
        controller.apply(VmEvent::Tick, &mut sink).unwrap_err(),
        SimError::SessionFinished
    );
}

#[test]
fn scenario_faults_are_validated_and_replayed_deterministically() {
    use cavm_workload::faults::{FaultEntry, FaultKind, FaultModel, FaultPlan, FaultPlanBuilder};

    let traces = fleet(9, 4.0, 11);
    let horizon = traces.vms()[0].fine.len();
    let lifecycle = churn_lifecycle(9, horizon);
    let plan = FaultPlanBuilder::new(horizon)
        .seed(23)
        .block(
            0,
            12,
            FaultModel {
                mtbf_samples: 2_000.0,
                mttr_samples: 150.0,
                outage_mtbf_samples: Some(12_000.0),
                outage_mttr_samples: 80.0,
            },
        )
        .build()
        .unwrap();
    assert!(
        plan.failures() > 0,
        "the plan must actually schedule faults"
    );
    let run = |p: Option<FaultPlan>| {
        let mut b = ScenarioBuilder::new(traces.clone())
            .servers(12)
            .policy(Policy::Proposed(Default::default()))
            .lifecycle(lifecycle.clone());
        if let Some(p) = p {
            b = b.faults(p);
        }
        b.build().unwrap().run().unwrap()
    };

    // Deterministic, and the faults visibly happened.
    let a = run(Some(plan.clone()));
    let b = run(Some(plan.clone()));
    assert_eq!(a, b);
    assert!(a.server_failures > 0);

    // An empty plan is bit-identical to no plan at all.
    assert_eq!(run(Some(FaultPlan::empty())), run(None));

    // Build-time validation: a backwards hand-built clock and an
    // out-of-fleet server are typed errors; a zero-slot queue too.
    let entry = |sample, kind, server| FaultEntry {
        sample,
        kind,
        server,
    };
    let backwards = FaultPlan::from_entries(vec![
        entry(10, FaultKind::Fail, 0),
        entry(5, FaultKind::Recover, 0),
    ]);
    let err = ScenarioBuilder::new(traces.clone())
        .servers(12)
        .faults(backwards)
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        cavm_sim::SimError::NonMonotoneClock {
            sample: 5,
            previous: 10
        }
    );
    let out_of_fleet = FaultPlan::from_entries(vec![entry(0, FaultKind::Fail, 12)]);
    let err = ScenarioBuilder::new(traces.clone())
        .servers(12)
        .faults(out_of_fleet)
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        cavm_sim::SimError::UnknownServer {
            server: 12,
            servers: 12
        }
    );
    assert!(ScenarioBuilder::new(traces.clone())
        .max_deferred(0)
        .build()
        .is_err());
}

#[test]
fn buffered_sink_stays_transparent_under_server_faults() {
    use cavm_sim::Buffered;
    use cavm_workload::faults::{FaultModel, FaultPlanBuilder};

    let traces = fleet(9, 4.0, 11);
    let horizon = traces.vms()[0].fine.len();
    let lifecycle = churn_lifecycle(9, horizon);
    let plan = FaultPlanBuilder::new(horizon)
        .seed(29)
        .block(
            0,
            12,
            FaultModel {
                mtbf_samples: 2_500.0,
                mttr_samples: 120.0,
                outage_mtbf_samples: None,
                outage_mttr_samples: 1.0,
            },
        )
        .build()
        .unwrap();
    let scenario = || {
        ScenarioBuilder::new(traces.clone())
            .servers(12)
            .policy(Policy::Proposed(Default::default()))
            .lifecycle(lifecycle.clone())
            .faults(plan.clone())
            .build()
            .unwrap()
    };

    // Roomy queue: fail/recover/evacuation events buffer and fold back
    // into exactly the unbuffered report.
    let mut plain = ReportSink::new();
    scenario().run_with_sink(&mut plain).unwrap();
    let plain_report = plain.into_report().unwrap();
    assert!(
        plain_report.server_failures > 0,
        "faults must reach the run"
    );
    let mut roomy = Buffered::new(ReportSink::new(), 1 << 16);
    scenario().run_with_sink(&mut roomy).unwrap();
    assert_eq!(roomy.dropped(), 0);
    assert_eq!(roomy.into_inner().into_report().unwrap(), plain_report);

    // A one-slot queue drops fault events like any others and counts
    // every one; the terminal report stays the controller's own.
    let mut tight = Buffered::new(ReportSink::new(), 1);
    scenario().run_with_sink(&mut tight).unwrap();
    let dropped = tight.dropped();
    assert!(dropped > 0);
    let tight_report = tight.into_inner().into_report().unwrap();
    assert_eq!(tight_report.sink_dropped_events, dropped);
    assert_eq!(tight_report.server_failures, plain_report.server_failures);
    assert_eq!(tight_report.evacuations, plain_report.evacuations);
}
