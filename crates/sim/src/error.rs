use cavm_core::CoreError;
use cavm_power::PowerError;
use cavm_trace::TraceError;
use std::fmt;

/// Errors produced by the datacenter simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An underlying time-series operation failed.
    Trace(TraceError),
    /// An underlying power-model operation failed.
    Power(PowerError),
    /// An underlying correlation/allocation operation failed.
    Core(CoreError),
    /// A scenario parameter was out of range.
    InvalidParameter(&'static str),
    /// A placement needed more servers than the scenario's fleet
    /// provides.
    InsufficientServers {
        /// Upper bound on the servers the placement would have wanted
        /// (every open slot plus one per still-unallocated VM).
        needed: usize,
        /// Servers the scenario's fleet has.
        available: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Trace(e) => write!(f, "trace error: {e}"),
            SimError::Power(e) => write!(f, "power error: {e}"),
            SimError::Core(e) => write!(f, "core error: {e}"),
            SimError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            SimError::InsufficientServers { needed, available } => {
                write!(
                    f,
                    "placement needs {needed} servers but only {available} exist"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Trace(e) => Some(e),
            SimError::Power(e) => Some(e),
            SimError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::Trace(e)
    }
}

impl From<PowerError> for SimError {
    fn from(e: PowerError) -> Self {
        SimError::Power(e)
    }
}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(SimError::from(TraceError::EmptyInput)
            .to_string()
            .contains("trace"));
        assert!(SimError::from(PowerError::EmptyLadder)
            .to_string()
            .contains("power"));
        assert!(SimError::from(CoreError::InvalidParameter("x"))
            .to_string()
            .contains("core"));
        let e = SimError::InsufficientServers {
            needed: 30,
            available: 20,
        };
        assert!(e.to_string().contains("30"));
        assert!(std::error::Error::source(&e).is_none());
        assert!(std::error::Error::source(&SimError::from(TraceError::EmptyInput)).is_some());
    }
}
