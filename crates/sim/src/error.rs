use cavm_core::CoreError;
use cavm_power::PowerError;
use cavm_trace::TraceError;
use cavm_workload::WorkloadError;
use std::fmt;

/// Errors produced by the datacenter simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An underlying time-series operation failed.
    Trace(TraceError),
    /// An underlying power-model operation failed.
    Power(PowerError),
    /// An underlying correlation/allocation operation failed.
    Core(CoreError),
    /// Workload/dataset ingestion failed
    /// ([`ScenarioBuilder::dataset`](crate::ScenarioBuilder::dataset)).
    Workload(WorkloadError),
    /// A scenario parameter was out of range.
    InvalidParameter(&'static str),
    /// A placement needed more servers than the scenario's fleet
    /// provides.
    InsufficientServers {
        /// Upper bound on the servers the placement would have wanted
        /// (every open slot plus one per still-unallocated VM).
        needed: usize,
        /// Servers the scenario's fleet has.
        available: usize,
    },
    /// An `Arrive` event reused the id of a VM that is still live in
    /// the session.
    DuplicateVm {
        /// The offending VM id.
        id: usize,
    },
    /// A `Depart` event named a VM id the session has never seen.
    UnknownVm {
        /// The offending VM id.
        id: usize,
    },
    /// A `Depart` event named a VM that already departed.
    VmAlreadyDeparted {
        /// The offending VM id.
        id: usize,
    },
    /// A `ServerFail`/`ServerRecover` event named a server index the
    /// session has not provisioned.
    UnknownServer {
        /// The offending server index.
        server: usize,
        /// Servers currently provisioned in the session.
        servers: usize,
    },
    /// A `ServerFail` event targeted a server that is already failed.
    ServerAlreadyFailed {
        /// The offending server index.
        server: usize,
    },
    /// A `ServerRecover` event targeted a server that is not failed.
    ServerNotFailed {
        /// The offending server index.
        server: usize,
    },
    /// An event plan's clock ran backwards: a scheduled sample
    /// precedes the one before it.
    NonMonotoneClock {
        /// The out-of-order sample index.
        sample: usize,
        /// The sample index it should not precede.
        previous: usize,
    },
    /// The degraded-mode deferred-admission queue is full: the fleet
    /// has lost too much capacity to even *remember* every pending VM.
    /// The triggering event is rejected atomically (session state is
    /// unchanged) so the caller can shed load and continue.
    DeferredQueueFull {
        /// The configured queue capacity
        /// (`ControllerConfig::max_deferred`).
        capacity: usize,
    },
    /// An event arrived after `finish` closed the controller session.
    SessionFinished,
    /// The [`sink::Threaded`](crate::sink::Threaded) consumer thread
    /// panicked while delivering events to the wrapped sink. The
    /// panic is surfaced as a typed error at
    /// [`Threaded::finish`](crate::sink::Threaded::finish) — never as
    /// a poisoned lock or a hung join — and the wrapped sink is lost
    /// with the unwound thread.
    SinkWorkerPanicked,
    /// A [`SessionEvent`](crate::service::SessionEvent) named a
    /// session index the [`SessionHost`](crate::service::SessionHost)
    /// does not own.
    UnknownSession {
        /// The offending session index.
        session: usize,
        /// Sessions the host owns.
        sessions: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Trace(e) => write!(f, "trace error: {e}"),
            SimError::Power(e) => write!(f, "power error: {e}"),
            SimError::Core(e) => write!(f, "core error: {e}"),
            SimError::Workload(e) => write!(f, "workload error: {e}"),
            SimError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            SimError::InsufficientServers { needed, available } => {
                write!(
                    f,
                    "placement needs {needed} servers but only {available} exist"
                )
            }
            SimError::DuplicateVm { id } => {
                write!(f, "vm {id} is already live in the session")
            }
            SimError::UnknownVm { id } => {
                write!(f, "vm {id} was never registered with the controller")
            }
            SimError::VmAlreadyDeparted { id } => {
                write!(f, "vm {id} already departed")
            }
            SimError::UnknownServer { server, servers } => {
                write!(f, "server {server} does not exist ({servers} provisioned)")
            }
            SimError::ServerAlreadyFailed { server } => {
                write!(f, "server {server} is already failed")
            }
            SimError::ServerNotFailed { server } => {
                write!(f, "server {server} is not failed")
            }
            SimError::NonMonotoneClock { sample, previous } => {
                write!(
                    f,
                    "event clock ran backwards: sample {sample} scheduled after sample {previous}"
                )
            }
            SimError::DeferredQueueFull { capacity } => {
                write!(
                    f,
                    "deferred-admission queue is full ({capacity} slots); event rejected"
                )
            }
            SimError::SessionFinished => {
                write!(f, "controller session already finished")
            }
            SimError::SinkWorkerPanicked => {
                write!(f, "threaded sink worker panicked; wrapped sink lost")
            }
            SimError::UnknownSession { session, sessions } => {
                write!(f, "session {session} does not exist ({sessions} hosted)")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Trace(e) => Some(e),
            SimError::Power(e) => Some(e),
            SimError::Core(e) => Some(e),
            SimError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::Trace(e)
    }
}

impl From<PowerError> for SimError {
    fn from(e: PowerError) -> Self {
        SimError::Power(e)
    }
}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

impl From<WorkloadError> for SimError {
    fn from(e: WorkloadError) -> Self {
        SimError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(SimError::from(TraceError::EmptyInput)
            .to_string()
            .contains("trace"));
        assert!(SimError::from(PowerError::EmptyLadder)
            .to_string()
            .contains("power"));
        assert!(SimError::from(CoreError::InvalidParameter("x"))
            .to_string()
            .contains("core"));
        let w = SimError::from(WorkloadError::InvalidParameter("x"));
        assert!(w.to_string().contains("workload"));
        assert!(std::error::Error::source(&w).is_some());
        let e = SimError::InsufficientServers {
            needed: 30,
            available: 20,
        };
        assert!(e.to_string().contains("30"));
        assert!(std::error::Error::source(&e).is_none());
        assert!(std::error::Error::source(&SimError::from(TraceError::EmptyInput)).is_some());
    }

    #[test]
    fn event_path_variants_render_their_context() {
        assert!(SimError::DuplicateVm { id: 7 }.to_string().contains("7"));
        assert!(SimError::UnknownVm { id: 3 }
            .to_string()
            .contains("never registered"));
        assert!(SimError::VmAlreadyDeparted { id: 4 }
            .to_string()
            .contains("departed"));
        let e = SimError::UnknownServer {
            server: 9,
            servers: 5,
        };
        assert!(e.to_string().contains("9") && e.to_string().contains("5"));
        assert!(SimError::ServerAlreadyFailed { server: 2 }
            .to_string()
            .contains("already failed"));
        assert!(SimError::ServerNotFailed { server: 2 }
            .to_string()
            .contains("not failed"));
        let e = SimError::NonMonotoneClock {
            sample: 10,
            previous: 20,
        };
        assert!(e.to_string().contains("backwards"));
        assert!(SimError::DeferredQueueFull { capacity: 8 }
            .to_string()
            .contains("8 slots"));
        assert!(SimError::SessionFinished.to_string().contains("finished"));
        assert!(SimError::SinkWorkerPanicked
            .to_string()
            .contains("panicked"));
        let e = SimError::UnknownSession {
            session: 9,
            sessions: 4,
        };
        assert!(e.to_string().contains("9") && e.to_string().contains("4"));
        // None of the event-path variants wrap a foreign source.
        assert!(std::error::Error::source(&SimError::SessionFinished).is_none());
        assert!(std::error::Error::source(&SimError::SinkWorkerPanicked).is_none());
    }
}
