//! Simulation reports: the quantities Table II and Fig 6 print.

use cavm_power::EnergyMeter;
use serde::{Deserialize, Serialize};

/// Per-period bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodRecord {
    /// Period index.
    pub period: usize,
    /// Active (non-empty) servers this period.
    pub servers_used: usize,
    /// Worst per-server violation ratio this period (over-utilized
    /// samples / period samples).
    pub max_violation_ratio: f64,
    /// VMs whose server changed relative to the previous period.
    pub migrations: usize,
    /// Number of PCP clusters this period (`None` for non-PCP
    /// policies). The paper reports 22 of 24 periods collapsing to one
    /// cluster.
    pub pcp_clusters: Option<usize>,
}

/// Per-server-class aggregates of a scenario run — how each slice of a
/// heterogeneous fleet contributed. A uniform scenario reports exactly
/// one breakdown whose totals equal the report's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassBreakdown {
    /// Class display name (from the fleet configuration).
    pub name: String,
    /// Cores per server of this class.
    pub cores: f64,
    /// Servers the fleet provides in this class.
    pub servers_available: usize,
    /// Maximum servers of this class active in any period.
    pub peak_servers_used: usize,
    /// Energy integrated over this class's active servers.
    pub energy: EnergyMeter,
    /// Over-utilized (server, sample) instances on this class.
    pub violation_instances: usize,
    /// VM migrations whose *destination* server belongs to this class.
    pub migrations_in: usize,
    /// GHz value of each level of this class's *own* DVFS ladder — the
    /// axis of [`ClassBreakdown::freq_histogram`]. Unlike the
    /// report-wide union axis, a mixed-ladder fleet reads naturally
    /// here: every column is a level this class can actually run at.
    pub freq_levels_ghz: Vec<f64>,
    /// Per-class Fig 6 histogram: active (server, sample) instances of
    /// this class spent at each ladder level, summed over the class's
    /// servers. Total mass equals the class's share of the report-wide
    /// histogram mass.
    pub freq_histogram: Vec<u64>,
}

impl ClassBreakdown {
    /// Fraction of this class's active samples spent at each of its
    /// ladder levels, or `None` if the class was never active.
    pub fn freq_distribution(&self) -> Option<Vec<f64>> {
        let total: u64 = self.freq_histogram.iter().sum();
        if total == 0 {
            return None;
        }
        Some(
            self.freq_histogram
                .iter()
                .map(|&c| c as f64 / total as f64)
                .collect(),
        )
    }
}

/// Aggregated outcome of a scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Policy display name.
    pub policy: String,
    /// Whether dynamic DVFS was active.
    pub dynamic_dvfs: bool,
    /// Total energy over the run (normalize against a baseline's meter
    /// for Table II's "normalized power").
    pub energy: EnergyMeter,
    /// The paper's QoS metric: max over periods (and servers) of the
    /// per-period over-utilization ratio, in percent.
    pub max_violation_percent: f64,
    /// Mean over periods of the per-period worst violation ratio, in
    /// percent.
    pub mean_violation_percent: f64,
    /// Total over-utilized (server, sample) instances.
    pub violation_instances: usize,
    /// Per-period records.
    pub periods: Vec<PeriodRecord>,
    /// Per-server-class breakdowns, in fleet class order.
    pub classes: Vec<ClassBreakdown>,
    /// Frequency usage histogram: `freq_histogram[server][level]` =
    /// samples spent at that level of the fleet-wide frequency list
    /// (Fig 6). Servers that were never active have all-zero rows.
    pub freq_histogram: Vec<Vec<u64>>,
    /// GHz value of each histogram column: the sorted union of every
    /// class ladder's levels (a uniform fleet's own ladder,
    /// unchanged).
    pub freq_levels_ghz: Vec<f64>,
    /// VMs admitted through the incremental single-VM placement path
    /// (mid-period arrivals in an online run). Always 0 for a batch
    /// replay, where every VM exists from t = 0 and placement happens
    /// only at period boundaries.
    pub online_admissions: usize,
    /// Off-cycle re-packs fired by a fragmentation
    /// [`RepackTrigger`](crate::RepackTrigger) or a
    /// [`QosGuard`](crate::QosGuard). Always 0 under the default
    /// periodic schedule.
    pub offcycle_repacks: usize,
    /// Events a bounded [`Buffered`](crate::sink::Buffered) sink
    /// adapter dropped on queue overflow during the run. Always 0 when
    /// the stream was consumed unbuffered — the controller itself
    /// never drops events; only the adapter's bounded queue can.
    pub sink_dropped_events: u64,
    /// [`VmEvent::ServerFail`](crate::VmEvent) events processed over
    /// the session. Always 0 for a fault-free run.
    pub server_failures: usize,
    /// VMs moved onto an outliving server by emergency evacuations.
    /// Evacuees that had to wait in the deferred queue count as
    /// [`SimReport::online_admissions`] once they land instead.
    pub evacuations: usize,
    /// High-water mark of the degraded-mode deferred-admission queue.
    pub deferred_peak: usize,
}

impl SimReport {
    /// Fraction of samples a server spent at each level, or `None` for
    /// a never-active server.
    pub fn freq_distribution(&self, server: usize) -> Option<Vec<f64>> {
        let row = self.freq_histogram.get(server)?;
        let total: u64 = row.iter().sum();
        if total == 0 {
            return None;
        }
        Some(row.iter().map(|&c| c as f64 / total as f64).collect())
    }

    /// Maximum number of servers used in any period.
    pub fn peak_servers_used(&self) -> usize {
        self.periods
            .iter()
            .map(|p| p.servers_used)
            .max()
            .unwrap_or(0)
    }

    /// Total migrations across all period boundaries.
    pub fn total_migrations(&self) -> usize {
        self.periods.iter().map(|p| p.migrations).sum()
    }

    /// Number of periods in which PCP found a single cluster (the
    /// degeneration the paper reports); `None` for non-PCP runs.
    pub fn pcp_single_cluster_periods(&self) -> Option<usize> {
        let counts: Vec<usize> = self.periods.iter().filter_map(|p| p.pcp_clusters).collect();
        if counts.is_empty() {
            None
        } else {
            Some(counts.iter().filter(|&&c| c == 1).count())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            policy: "BFD".into(),
            dynamic_dvfs: false,
            energy: EnergyMeter::new(),
            max_violation_percent: 10.0,
            mean_violation_percent: 2.0,
            violation_instances: 5,
            periods: vec![
                PeriodRecord {
                    period: 0,
                    servers_used: 3,
                    max_violation_ratio: 0.1,
                    migrations: 0,
                    pcp_clusters: Some(1),
                },
                PeriodRecord {
                    period: 1,
                    servers_used: 5,
                    max_violation_ratio: 0.0,
                    migrations: 2,
                    pcp_clusters: Some(3),
                },
            ],
            classes: vec![ClassBreakdown {
                name: "uniform".into(),
                cores: 8.0,
                servers_available: 20,
                peak_servers_used: 5,
                energy: EnergyMeter::new(),
                violation_instances: 5,
                migrations_in: 2,
                freq_levels_ghz: vec![2.0, 2.3],
                freq_histogram: vec![10, 30],
            }],
            freq_histogram: vec![vec![10, 30], vec![0, 0]],
            freq_levels_ghz: vec![2.0, 2.3],
            online_admissions: 0,
            offcycle_repacks: 0,
            sink_dropped_events: 0,
            server_failures: 0,
            evacuations: 0,
            deferred_peak: 0,
        }
    }

    #[test]
    fn freq_distribution_normalizes() {
        let r = report();
        let d = r.freq_distribution(0).unwrap();
        assert!((d[0] - 0.25).abs() < 1e-12);
        assert!((d[1] - 0.75).abs() < 1e-12);
        assert_eq!(r.freq_distribution(1), None, "inactive server");
        assert_eq!(r.freq_distribution(9), None, "unknown server");
    }

    #[test]
    fn class_freq_distribution_normalizes() {
        let r = report();
        let d = r.classes[0].freq_distribution().unwrap();
        assert!((d[0] - 0.25).abs() < 1e-12);
        assert!((d[1] - 0.75).abs() < 1e-12);
        let mut idle = r.classes[0].clone();
        idle.freq_histogram = vec![0, 0];
        assert_eq!(idle.freq_distribution(), None);
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert_eq!(r.peak_servers_used(), 5);
        assert_eq!(r.total_migrations(), 2);
        assert_eq!(r.pcp_single_cluster_periods(), Some(1));
        let mut no_pcp = r;
        for p in &mut no_pcp.periods {
            p.pcp_clusters = None;
        }
        assert_eq!(no_pcp.pcp_single_cluster_periods(), None);
    }
}
