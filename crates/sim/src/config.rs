//! Scenario description and builder.

use crate::controller::{
    ControllerConfig, DatacenterController, OvercommitConfig, QosGuard, RepackTrigger,
};
use crate::SimError;
use cavm_core::alloc::proposed::ProposedConfig;
use cavm_core::dvfs::DvfsMode;
use cavm_core::fleet::ServerFleet;
use cavm_power::LinearPowerModel;
use cavm_trace::Reference;
use cavm_workload::datacenter::VmFleet;
use cavm_workload::faults::FaultPlan;
use cavm_workload::lifecycle::Lifecycle;
use serde::{Deserialize, Serialize};

/// Which placement policy drives the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Best-Fit-Decreasing (the Table II baseline and normalization
    /// reference).
    Bfd,
    /// First-Fit-Decreasing.
    Ffd,
    /// Peak Clustering-based Placement (Verma et al. \[6\]); re-clustered
    /// every period from the previous period's traces.
    Pcp {
        /// Envelope threshold percentile (Verma's off-peak value; the
        /// paper's experiments use the 90th).
        envelope_percentile: f64,
        /// Minimum envelope containment for two VMs to join a cluster.
        affinity_threshold: f64,
    },
    /// The paper's correlation-aware heuristic plus Eqn (4) frequency
    /// scaling.
    Proposed(ProposedConfig),
    /// Joint-VM sizing (Meng et al. \[7\]): un-correlated VMs fused into
    /// super-VMs once per period, then packed with BFD. Fused pairs get
    /// a joint size below their peak sum, so the placement overcommits
    /// relative to coincident peaks; frequency stays worst-case (the
    /// scheme has no per-server correlation model to discount with).
    SuperVm {
        /// Minimum pair cost (Eqn 1) for fusing two VMs.
        min_pair_cost: f64,
    },
}

impl Policy {
    /// Stable display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Bfd => "BFD",
            Policy::Ffd => "FFD",
            Policy::Pcp { .. } => "PCP",
            Policy::Proposed(_) => "Proposed",
            Policy::SuperVm { .. } => "SuperVM",
        }
    }

    /// Whether this policy may discount the frequency by the server
    /// cost (Eqn 4). Only the proposed policy has the correlation
    /// knowledge to do so safely.
    pub fn correlation_aware_frequency(&self) -> bool {
        matches!(self, Policy::Proposed(_))
    }
}

/// A fully-specified, validated simulation scenario.
///
/// Build with [`ScenarioBuilder`]; run with [`Scenario::run`].
#[derive(Debug, Clone)]
pub struct Scenario {
    pub(crate) fleet: VmFleet,
    pub(crate) server_fleet: ServerFleet,
    pub(crate) policy: Policy,
    pub(crate) repack_trigger: RepackTrigger,
    pub(crate) qos_guard: Option<QosGuard>,
    pub(crate) adaptive_slack_max: Option<u32>,
    pub(crate) overcommit: Option<OvercommitConfig>,
    pub(crate) dvfs_mode: DvfsMode,
    pub(crate) period_samples: usize,
    pub(crate) reference: Reference,
    pub(crate) dynamic_headroom: f64,
    pub(crate) default_demand: f64,
    pub(crate) lifecycle: Option<Lifecycle>,
    pub(crate) faults: Option<FaultPlan>,
    pub(crate) max_deferred: usize,
}

impl Scenario {
    /// The placement policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// When the live placement is re-packed.
    pub fn repack_trigger(&self) -> RepackTrigger {
        self.repack_trigger
    }

    /// The QoS guard composed onto the re-pack schedule, if any.
    pub fn qos_guard(&self) -> Option<QosGuard> {
        self.qos_guard
    }

    /// The adaptive-slack upper bound, if adaptive slack is enabled.
    pub fn adaptive_slack_max(&self) -> Option<u32> {
        self.adaptive_slack_max
    }

    /// The deliberate-overcommit configuration, if overcommit is
    /// enabled.
    pub fn overcommit(&self) -> Option<OvercommitConfig> {
        self.overcommit
    }

    /// Samples per placement period.
    pub fn period_samples(&self) -> usize {
        self.period_samples
    }

    /// The server fleet the scenario replays against.
    pub fn server_fleet(&self) -> &ServerFleet {
        &self.server_fleet
    }

    /// The arrival/departure schedule, or `None` for the closed-world
    /// batch replay.
    pub fn lifecycle(&self) -> Option<&Lifecycle> {
        self.lifecycle.as_ref()
    }

    /// The server fault schedule, or `None` for a fault-free replay.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Capacity of the degraded-mode deferred-admission queue.
    pub fn max_deferred(&self) -> usize {
        self.max_deferred
    }

    /// Opens an online [`DatacenterController`] with this scenario's
    /// knobs (fleet, policy, DVFS mode, period, reference, defaults).
    /// [`Scenario::run`] is exactly this controller driven by the
    /// scenario's lifecycle (or the all-at-t0 default).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::InvalidParameter`] from controller
    /// validation (the builder has already validated the same knobs).
    pub fn controller(&self) -> crate::Result<DatacenterController> {
        DatacenterController::new(self.controller_config())
    }

    /// The controller-side view of this scenario's knobs — what
    /// [`Scenario::controller`] opens a session with. Useful to seed a
    /// [`SessionHost`](crate::service::SessionHost) with many
    /// identically-configured (or per-tenant varied) sessions.
    pub fn controller_config(&self) -> ControllerConfig {
        ControllerConfig {
            server_fleet: self.server_fleet.clone(),
            policy: self.policy,
            repack_trigger: self.repack_trigger,
            qos_guard: self.qos_guard,
            adaptive_slack_max: self.adaptive_slack_max,
            overcommit: self.overcommit,
            dvfs_mode: self.dvfs_mode,
            period_samples: self.period_samples,
            reference: self.reference,
            dynamic_headroom: self.dynamic_headroom,
            default_demand: self.default_demand,
            sample_dt_s: self.fleet.vms()[0].fine.dt(),
            max_deferred: self.max_deferred,
        }
    }
}

/// Builder with the paper's Setup-2 defaults: 20 Xeon-E5410-like servers
/// of 8 cores, 1-hour placement periods over 5-second samples (720
/// samples per period), peak-reference provisioning, static DVFS.
///
/// The uniform knobs ([`ScenarioBuilder::servers`],
/// [`ScenarioBuilder::cores_per_server`],
/// [`ScenarioBuilder::power_model`]) assemble a one-class
/// [`ServerFleet`] at [`ScenarioBuilder::build`];
/// [`ScenarioBuilder::server_fleet`] supplies a heterogeneous fleet
/// directly and overrides all three.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    fleet: VmFleet,
    server_count: usize,
    cores_per_server: usize,
    power_model: LinearPowerModel,
    server_fleet: Option<ServerFleet>,
    policy: Policy,
    repack_trigger: RepackTrigger,
    qos_guard: Option<QosGuard>,
    adaptive_slack_max: Option<u32>,
    overcommit: Option<OvercommitConfig>,
    dvfs_mode: DvfsMode,
    period_samples: usize,
    reference: Reference,
    dynamic_headroom: f64,
    default_demand: f64,
    lifecycle: Option<Lifecycle>,
    faults: Option<FaultPlan>,
    max_deferred: usize,
}

impl ScenarioBuilder {
    /// Starts a builder around a streaming [`TraceDataset`] — real
    /// CSV readers and synthetic generators alike.
    ///
    /// Drains the dataset through
    /// [`cavm_workload::dataset::assemble`] into a fleet plus a
    /// trace-driven lifecycle, and returns a builder pre-seeded with
    /// both; every other knob (`servers`, `policy`, triggers, faults,
    /// …) composes as usual.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Workload`] when ingestion fails (malformed
    /// CSV, NaN/negative demand, backwards arrival clocks, …).
    ///
    /// # Example
    ///
    /// ```
    /// use cavm_sim::{Policy, ScenarioBuilder};
    /// use cavm_workload::dataset::{DemandModel, SyntheticApp, SyntheticTraceBuilder};
    /// use cavm_workload::{ArrivalProcess, LifetimeModel};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut dataset = SyntheticTraceBuilder::new(1440)
    ///     .seed(42)
    ///     .app(SyntheticApp {
    ///         name: "web".into(),
    ///         vm_count: 8,
    ///         arrivals: ArrivalProcess::Poisson { mean_gap_samples: 60.0 },
    ///         lifetimes: LifetimeModel::Uniform { min_samples: 360, max_samples: 1080 },
    ///         demand: DemandModel::Uniform { lo: 0.5, hi: 2.0 },
    ///     })
    ///     .build()?;
    /// let report = ScenarioBuilder::dataset(&mut dataset)?
    ///     .servers(8)
    ///     .policy(Policy::Proposed(Default::default()))
    ///     .build()?
    ///     .run()?;
    /// assert!(report.energy.joules() > 0.0);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// [`TraceDataset`]: cavm_workload::dataset::TraceDataset
    pub fn dataset<D>(dataset: &mut D) -> Result<Self, SimError>
    where
        D: cavm_workload::dataset::TraceDataset + ?Sized,
    {
        let (fleet, lifecycle) = cavm_workload::dataset::assemble(dataset)?;
        Ok(Self::new(fleet).lifecycle(lifecycle))
    }

    /// Starts a builder around a trace fleet.
    pub fn new(fleet: VmFleet) -> Self {
        Self {
            fleet,
            server_count: 20,
            cores_per_server: 8,
            power_model: LinearPowerModel::xeon_e5410(),
            server_fleet: None,
            policy: Policy::Bfd,
            repack_trigger: RepackTrigger::Periodic,
            qos_guard: None,
            adaptive_slack_max: None,
            overcommit: None,
            dvfs_mode: DvfsMode::Static,
            period_samples: 720,
            reference: Reference::Peak,
            dynamic_headroom: 0.25,
            default_demand: 2.0,
            lifecycle: None,
            faults: None,
            max_deferred: 1024,
        }
    }

    /// Number of available servers (paper: 20). Ignored when
    /// [`ScenarioBuilder::server_fleet`] is set.
    pub fn servers(mut self, count: usize) -> Self {
        self.server_count = count;
        self
    }

    /// Cores per server (paper: 8). Ignored when
    /// [`ScenarioBuilder::server_fleet`] is set.
    pub fn cores_per_server(mut self, cores: usize) -> Self {
        self.cores_per_server = cores;
        self
    }

    /// Server power model (default: Xeon E5410 preset). Ignored when
    /// [`ScenarioBuilder::server_fleet`] is set.
    pub fn power_model(mut self, model: LinearPowerModel) -> Self {
        self.power_model = model;
        self
    }

    /// Replays against an explicit (possibly heterogeneous) server
    /// fleet, overriding the uniform knobs. Every class must be
    /// bounded.
    pub fn server_fleet(mut self, fleet: ServerFleet) -> Self {
        self.server_fleet = Some(fleet);
        self
    }

    /// Placement policy (default: BFD).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// When the live placement is re-packed (default:
    /// [`RepackTrigger::Periodic`], the paper's fixed schedule — the
    /// fragmentation variants additionally consolidate off-cycle when
    /// departures leave the fleet fragmented).
    pub fn repack_trigger(mut self, trigger: RepackTrigger) -> Self {
        self.repack_trigger = trigger;
        self
    }

    /// Composes a [`QosGuard`] onto the re-pack schedule (default:
    /// none): an off-cycle full re-pack fires when a period's observed
    /// worst per-server violation ratio exceeds the guard's threshold,
    /// and placement-keeping boundaries force-repack servers whose
    /// refreshed predicted load exceeds capacity. This is what lets a
    /// pure [`RepackTrigger::Fragmentation`] schedule keep its energy
    /// win without the unbounded violation drift.
    pub fn qos_guard(mut self, guard: QosGuard) -> Self {
        self.qos_guard = Some(guard);
        self
    }

    /// Enables adaptive fragmentation slack (default: static): the
    /// controller walks the slack between the trigger's configured
    /// value and `max` from each fired re-pack's realized
    /// servers-freed-per-migration gain (see
    /// [`SlackController`](crate::SlackController)). Requires a
    /// trigger with a fragmentation dimension.
    pub fn adaptive_slack_max(mut self, max: u32) -> Self {
        self.adaptive_slack_max = Some(max);
        self
    }

    /// Enables deliberate correlation-gap overcommit (default: off):
    /// admission and re-packs accept predicted per-VM sums up to
    /// `capacity x (1 + margin)` on servers whose Eqn (1) coincident
    /// estimate stays within plain capacity, with a per-class
    /// [`OvercommitController`](crate::OvercommitController) walking
    /// the live margin between 0 and `max_margin` from observed
    /// violation ratios. Requires [`ScenarioBuilder::qos_guard`] (the
    /// reactive backstop); `margin` must lie in `[0, max_margin]` and
    /// `max_margin` in `(0, 1]`.
    pub fn overcommit(mut self, margin: f64, max_margin: f64) -> Self {
        self.overcommit = Some(OvercommitConfig { margin, max_margin });
        self
    }

    /// Static or dynamic frequency scaling (default: static).
    pub fn dvfs_mode(mut self, mode: DvfsMode) -> Self {
        self.dvfs_mode = mode;
        self
    }

    /// Samples per placement period (default 720 = 1 h of 5 s samples).
    pub fn period_samples(mut self, samples: usize) -> Self {
        self.period_samples = samples;
        self
    }

    /// Reference utilization for provisioning (default: peak, as in the
    /// paper's Setup-2).
    pub fn reference(mut self, reference: Reference) -> Self {
        self.reference = reference;
        self
    }

    /// Relative headroom of the dynamic governor (default 0.25).
    pub fn dynamic_headroom(mut self, headroom: f64) -> Self {
        self.dynamic_headroom = headroom;
        self
    }

    /// Demand assumed for a VM before its first observed period
    /// (default 2.0 cores).
    pub fn default_demand(mut self, demand: f64) -> Self {
        self.default_demand = demand;
        self
    }

    /// Drives the run from an arrival/departure schedule instead of
    /// the closed-world default: each scheduled VM arrives (and is
    /// admitted online, mid-period arrivals incrementally) at its
    /// arrival sample and departs at its departure sample; fleet VMs
    /// absent from the schedule never run. The schedule's horizon must
    /// equal the fleet's fine trace length.
    pub fn lifecycle(mut self, lifecycle: Lifecycle) -> Self {
        self.lifecycle = Some(lifecycle);
        self
    }

    /// Injects a server fault schedule (default: none): each planned
    /// transition becomes a `ServerFail`/`ServerRecover` event in the
    /// replay stream, interleaved with the lifecycle at its sample.
    /// Transitions aimed at servers the run never provisions are
    /// skipped; re-failing an already-failed server (e.g. a correlated
    /// outage overlapping an independent failure) is idempotent.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Capacity of the degraded-mode deferred-admission queue (default
    /// 1024): how many VMs the controller will remember while the
    /// shrunken fleet cannot host them. Must be at least 1.
    pub fn max_deferred(mut self, capacity: usize) -> Self {
        self.max_deferred = capacity;
        self
    }

    /// Validates and freezes the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for an empty fleet,
    /// zero servers/cores, a period longer than the traces, mismatched
    /// trace lengths, or out-of-range tuning values.
    pub fn build(self) -> crate::Result<Scenario> {
        if self.fleet.is_empty() {
            return Err(SimError::InvalidParameter("fleet must not be empty"));
        }
        let server_fleet = match self.server_fleet {
            Some(fleet) => fleet,
            None => {
                if self.server_count == 0 || self.cores_per_server == 0 {
                    return Err(SimError::InvalidParameter(
                        "need at least one server and one core",
                    ));
                }
                ServerFleet::uniform(
                    self.server_count,
                    self.cores_per_server as f64,
                    self.power_model,
                )
                .map_err(SimError::Core)?
            }
        };
        if server_fleet.total_slots().is_none() {
            return Err(SimError::InvalidParameter(
                "sim fleets must be bounded (no UNBOUNDED classes)",
            ));
        }
        if self.period_samples == 0 {
            return Err(SimError::InvalidParameter(
                "period must be at least one sample",
            ));
        }
        if self.repack_trigger.slack() == Some(0) {
            return Err(SimError::InvalidParameter(
                "fragmentation slack must be at least one server",
            ));
        }
        if let Some(guard) = self.qos_guard {
            if !(guard.violation_ratio.is_finite()
                && guard.violation_ratio > 0.0
                && guard.violation_ratio <= 1.0)
            {
                return Err(SimError::InvalidParameter(
                    "qos guard violation ratio must lie in (0, 1]",
                ));
            }
        }
        if let Some(max) = self.adaptive_slack_max {
            match self.repack_trigger.slack() {
                None => {
                    return Err(SimError::InvalidParameter(
                        "adaptive slack requires a trigger with a fragmentation dimension",
                    ))
                }
                Some(slack) if max < slack => {
                    return Err(SimError::InvalidParameter(
                        "adaptive slack bound must be at least the trigger's slack",
                    ))
                }
                Some(_) => {}
            }
        }
        if let Some(oc) = self.overcommit {
            if self.qos_guard.is_none() {
                return Err(SimError::InvalidParameter(
                    "deliberate overcommit requires a qos guard as the reactive backstop",
                ));
            }
            if !(oc.max_margin.is_finite() && oc.max_margin > 0.0 && oc.max_margin <= 1.0) {
                return Err(SimError::InvalidParameter(
                    "overcommit max margin must lie in (0, 1]",
                ));
            }
            if !(oc.margin.is_finite() && (0.0..=oc.max_margin).contains(&oc.margin)) {
                return Err(SimError::InvalidParameter(
                    "overcommit margin must lie in [0, max_margin]",
                ));
            }
        }
        let len = self.fleet.vms()[0].fine.len();
        if len < self.period_samples {
            return Err(SimError::InvalidParameter("traces shorter than one period"));
        }
        for vm in self.fleet.vms() {
            if vm.fine.len() != len {
                return Err(SimError::InvalidParameter(
                    "all fine traces must have equal length",
                ));
            }
        }
        if !(self.dynamic_headroom.is_finite() && self.dynamic_headroom >= 0.0) {
            return Err(SimError::InvalidParameter("dynamic headroom must be >= 0"));
        }
        if !(self.default_demand.is_finite() && self.default_demand > 0.0) {
            return Err(SimError::InvalidParameter("default demand must be > 0"));
        }
        if let Policy::Pcp {
            envelope_percentile,
            affinity_threshold,
        } = self.policy
        {
            if !(0.0 < envelope_percentile && envelope_percentile < 100.0) {
                return Err(SimError::InvalidParameter(
                    "pcp envelope percentile must lie in (0, 100)",
                ));
            }
            if !(0.0..=1.0).contains(&affinity_threshold) {
                return Err(SimError::InvalidParameter(
                    "pcp affinity threshold must lie in [0, 1]",
                ));
            }
        }
        if let Policy::SuperVm { min_pair_cost } = self.policy {
            if !min_pair_cost.is_finite() {
                return Err(SimError::InvalidParameter(
                    "super-vm pair-cost threshold must be finite",
                ));
            }
        }
        if let DvfsMode::Dynamic { interval_samples } = self.dvfs_mode {
            if interval_samples == 0 {
                return Err(SimError::InvalidParameter(
                    "dynamic interval must be >= 1 sample",
                ));
            }
        }
        if let Some(lifecycle) = &self.lifecycle {
            if lifecycle.horizon_samples() != len {
                return Err(SimError::InvalidParameter(
                    "lifecycle horizon must equal the fine trace length",
                ));
            }
            for entry in lifecycle.entries() {
                if entry.id >= self.fleet.len() {
                    return Err(SimError::InvalidParameter(
                        "lifecycle references a vm outside the fleet",
                    ));
                }
            }
        }
        if self.max_deferred == 0 {
            return Err(SimError::InvalidParameter(
                "deferred-admission queue needs at least one slot",
            ));
        }
        if let Some(plan) = &self.faults {
            // Hand-built plans may carry a backwards clock or aim past
            // the fleet; builder-made ones never do. Out-of-horizon
            // samples are harmless (the replay never reaches them).
            let mut previous = 0usize;
            for entry in plan.entries() {
                if entry.sample < previous {
                    return Err(SimError::NonMonotoneClock {
                        sample: entry.sample,
                        previous,
                    });
                }
                previous = entry.sample;
            }
            let servers = server_fleet
                .total_slots()
                .expect("bounded fleet checked above");
            if let Some(max) = plan.max_server() {
                if max >= servers {
                    return Err(SimError::UnknownServer {
                        server: max,
                        servers,
                    });
                }
            }
        }
        Ok(Scenario {
            fleet: self.fleet,
            server_fleet,
            policy: self.policy,
            repack_trigger: self.repack_trigger,
            qos_guard: self.qos_guard,
            adaptive_slack_max: self.adaptive_slack_max,
            overcommit: self.overcommit,
            dvfs_mode: self.dvfs_mode,
            period_samples: self.period_samples,
            reference: self.reference,
            dynamic_headroom: self.dynamic_headroom,
            default_demand: self.default_demand,
            lifecycle: self.lifecycle,
            faults: self.faults,
            max_deferred: self.max_deferred,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cavm_workload::datacenter::DatacenterTraceBuilder;

    fn fleet() -> VmFleet {
        DatacenterTraceBuilder::new(4)
            .groups(2)
            .seed(9)
            .duration_hours(2.0)
            .build()
            .unwrap()
    }

    #[test]
    fn policy_names_and_awareness() {
        assert_eq!(Policy::Bfd.name(), "BFD");
        assert_eq!(Policy::Ffd.name(), "FFD");
        assert_eq!(
            Policy::Pcp {
                envelope_percentile: 90.0,
                affinity_threshold: 0.2
            }
            .name(),
            "PCP"
        );
        assert_eq!(Policy::Proposed(Default::default()).name(), "Proposed");
        assert!(Policy::Proposed(Default::default()).correlation_aware_frequency());
        assert!(!Policy::Bfd.correlation_aware_frequency());
        assert!(!Policy::Pcp {
            envelope_percentile: 90.0,
            affinity_threshold: 0.2
        }
        .correlation_aware_frequency());
    }

    #[test]
    fn builder_validates() {
        assert!(ScenarioBuilder::new(fleet()).build().is_ok());
        assert!(ScenarioBuilder::new(fleet()).servers(0).build().is_err());
        assert!(ScenarioBuilder::new(fleet())
            .cores_per_server(0)
            .build()
            .is_err());
        assert!(ScenarioBuilder::new(fleet())
            .period_samples(0)
            .build()
            .is_err());
        // 2 h of 5 s samples = 1440 < one 2000-sample period.
        assert!(ScenarioBuilder::new(fleet())
            .period_samples(2000)
            .build()
            .is_err());
        assert!(ScenarioBuilder::new(fleet())
            .dynamic_headroom(-1.0)
            .build()
            .is_err());
        assert!(ScenarioBuilder::new(fleet())
            .default_demand(0.0)
            .build()
            .is_err());
        assert!(ScenarioBuilder::new(fleet())
            .policy(Policy::Pcp {
                envelope_percentile: 0.0,
                affinity_threshold: 0.2
            })
            .build()
            .is_err());
        assert!(ScenarioBuilder::new(fleet())
            .policy(Policy::Pcp {
                envelope_percentile: 90.0,
                affinity_threshold: 2.0
            })
            .build()
            .is_err());
        assert!(ScenarioBuilder::new(fleet())
            .dvfs_mode(DvfsMode::Dynamic {
                interval_samples: 0
            })
            .build()
            .is_err());
        // Overcommit needs the guard backstop and in-range margins.
        assert!(ScenarioBuilder::new(fleet())
            .overcommit(0.1, 0.25)
            .build()
            .is_err());
        assert!(ScenarioBuilder::new(fleet())
            .qos_guard(QosGuard {
                violation_ratio: 0.05
            })
            .overcommit(0.1, 0.25)
            .build()
            .is_ok());
        assert!(ScenarioBuilder::new(fleet())
            .qos_guard(QosGuard {
                violation_ratio: 0.05
            })
            .overcommit(0.3, 0.25)
            .build()
            .is_err());
        assert!(ScenarioBuilder::new(fleet())
            .qos_guard(QosGuard {
                violation_ratio: 0.05
            })
            .overcommit(0.0, 0.0)
            .build()
            .is_err());
    }

    #[test]
    fn builder_passes_settings_through() {
        let s = ScenarioBuilder::new(fleet())
            .servers(5)
            .cores_per_server(4)
            .policy(Policy::Ffd)
            .period_samples(360)
            .build()
            .unwrap();
        assert_eq!(s.policy().name(), "FFD");
        assert_eq!(s.period_samples(), 360);
        assert!(s.server_fleet().is_uniform());
        assert_eq!(s.server_fleet().total_slots(), Some(5));
        assert_eq!(s.server_fleet().class(0).unwrap().cores(), 4.0);
    }

    #[test]
    fn builder_accepts_explicit_fleet_and_rejects_unbounded() {
        use cavm_core::fleet::{ServerClass, ServerFleet, UNBOUNDED};
        let hetero = ServerFleet::new(vec![
            ServerClass::new("small", 8, 4.0, LinearPowerModel::xeon_e5410()).unwrap(),
            ServerClass::new("big", 2, 16.0, LinearPowerModel::xeon_e5410()).unwrap(),
        ])
        .unwrap();
        let s = ScenarioBuilder::new(fleet())
            .server_fleet(hetero.clone())
            .build()
            .unwrap();
        assert_eq!(s.server_fleet(), &hetero);
        let unbounded = ServerFleet::new(vec![ServerClass::new(
            "open",
            UNBOUNDED,
            8.0,
            LinearPowerModel::xeon_e5410(),
        )
        .unwrap()])
        .unwrap();
        assert!(ScenarioBuilder::new(fleet())
            .server_fleet(unbounded)
            .build()
            .is_err());
    }
}
