//! Sink adapters — composable wrappers around a [`MetricSink`].
//!
//! The controller delivers every event synchronously: a sink that
//! renders a dashboard, writes a socket or flushes a file would stall
//! the replay loop on every violation sample. [`Buffered`] decouples
//! the two rates: events land in a **bounded** in-memory queue (an
//! overflowing queue *drops* the incoming event and counts it — the
//! replay loop never blocks and never grows memory without bound) and
//! the queue drains into the inner sink in batches at the natural
//! flush points — every completed period, at the terminal summary, or
//! whenever the caller asks via [`Buffered::drain`].
//!
//! [`Threaded`] keeps exactly the same producer-side semantics but
//! delivers each flushed batch on a dedicated worker thread, so an
//! expensive sink overlaps with simulation instead of stalling it.
//! The wrapped sink moves into the worker; [`Threaded::finish`] joins
//! and returns it (or the typed
//! [`SimError::SinkWorkerPanicked`]
//! if it panicked). The two adapters nest in either order without
//! double-counting drops.
//!
//! The terminal [`SimReport`] an inner sink receives through
//! [`MetricSink::on_summary`] carries the adapter's drop counter in
//! [`SimReport::sink_dropped_events`], so a consumer can tell a quiet
//! run from a saturated queue.
//!
//! ```
//! use cavm_sim::sink::{Buffered, SinkEvent};
//! use cavm_sim::{MetricSink, PeriodRecord};
//!
//! /// Counts what actually reaches the expensive consumer.
//! #[derive(Default)]
//! struct Dashboard {
//!     violations: usize,
//! }
//!
//! impl MetricSink for Dashboard {
//!     fn on_violation(&mut self, _event: &cavm_sim::ViolationEvent) {
//!         self.violations += 1;
//!     }
//! }
//!
//! let mut sink = Buffered::new(Dashboard::default(), 2);
//! for sample in 0..5 {
//!     sink.on_violation(&cavm_sim::ViolationEvent {
//!         sample,
//!         period: 0,
//!         server: 0,
//!         class: 0,
//!         demand: 9.0,
//!         capacity: 8.0,
//!     });
//! }
//! // Nothing delivered yet, three of five overflowed the queue.
//! assert_eq!(sink.inner().violations, 0);
//! assert_eq!(sink.queued(), 2);
//! assert_eq!(sink.dropped(), 3);
//! sink.drain();
//! assert_eq!(sink.inner().violations, 2);
//! ```

use crate::controller::{MetricSink, RepackEvent, ViolationEvent};
use crate::error::SimError;
use crate::report::{PeriodRecord, SimReport};
use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc;
use std::thread;

/// One buffered controller event, in delivery order.
#[derive(Debug, Clone, PartialEq)]
pub enum SinkEvent {
    /// A completed period ([`MetricSink::on_period`]).
    Period(PeriodRecord),
    /// A re-pack ([`MetricSink::on_repack`]).
    Repack(RepackEvent),
    /// A cross-boundary migration ([`MetricSink::on_migration`]).
    Migration {
        /// Placement period of the migration.
        period: usize,
        /// The VM that moved.
        vm: usize,
        /// Source server.
        from: usize,
        /// Destination server.
        to: usize,
    },
    /// A capacity violation sample ([`MetricSink::on_violation`]).
    Violation(ViolationEvent),
    /// A class's per-period energy ([`MetricSink::on_class_energy`]).
    ClassEnergy {
        /// Placement period the energy was integrated over.
        period: usize,
        /// Fleet class index.
        class: usize,
        /// Class display name.
        name: String,
        /// Joules the class consumed over the period.
        period_joules: f64,
    },
    /// An incremental admission ([`MetricSink::on_admit`]).
    Admit {
        /// Global sample index of the admission.
        sample: usize,
        /// The admitted VM.
        vm: usize,
        /// The hosting server.
        server: usize,
    },
    /// A server failure ([`MetricSink::on_server_fail`]).
    ServerFail {
        /// Global sample index of the failure.
        sample: usize,
        /// The failed server.
        server: usize,
        /// VMs resident at the instant of failure (about to
        /// emergency-evacuate).
        residents: usize,
    },
    /// A server recovery ([`MetricSink::on_server_recover`]).
    ServerRecover {
        /// Global sample index of the recovery.
        sample: usize,
        /// The recovered server.
        server: usize,
    },
}

impl SinkEvent {
    /// Replays this event into `sink` through the matching
    /// [`MetricSink`] method. Shared by [`Buffered::drain`] and the
    /// [`Threaded`] worker loop so both adapters deliver batches
    /// identically.
    pub fn deliver(self, sink: &mut dyn MetricSink) {
        match self {
            SinkEvent::Period(record) => sink.on_period(&record),
            SinkEvent::Repack(event) => sink.on_repack(&event),
            SinkEvent::Migration {
                period,
                vm,
                from,
                to,
            } => sink.on_migration(period, vm, from, to),
            SinkEvent::Violation(event) => sink.on_violation(&event),
            SinkEvent::ClassEnergy {
                period,
                class,
                name,
                period_joules,
            } => sink.on_class_energy(period, class, &name, period_joules),
            SinkEvent::Admit { sample, vm, server } => sink.on_admit(sample, vm, server),
            SinkEvent::ServerFail {
                sample,
                server,
                residents,
            } => sink.on_server_fail(sample, server, residents),
            SinkEvent::ServerRecover { sample, server } => sink.on_server_recover(sample, server),
        }
    }
}

/// A bounded, batching adapter around an inner [`MetricSink`]. See the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct Buffered<S> {
    inner: S,
    queue: VecDeque<SinkEvent>,
    capacity: usize,
    dropped: u64,
}

impl<S: MetricSink> Buffered<S> {
    /// Wraps `inner` behind a queue of at most `capacity` events
    /// (clamped up to 1 — a zero-capacity queue would drop every
    /// between-boundary event unseen). Period records and the terminal
    /// summary are delivered at the flush points themselves and are
    /// never queued, so they can never be dropped.
    pub fn new(inner: S, capacity: usize) -> Self {
        Self {
            inner,
            queue: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped sink, mutably.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Drains the queue and returns the wrapped sink.
    pub fn into_inner(mut self) -> S {
        self.drain();
        self.inner
    }

    /// Events currently queued and not yet delivered.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Events dropped on queue overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Delivers every queued event to the inner sink, in arrival
    /// order. Called automatically on every completed period and at
    /// the terminal summary.
    pub fn drain(&mut self) {
        while let Some(event) = self.queue.pop_front() {
            event.deliver(&mut self.inner);
        }
    }

    /// Enqueues one event, dropping (and counting) it when the queue
    /// is at capacity.
    fn enqueue(&mut self, event: SinkEvent) {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
        } else {
            self.queue.push_back(event);
        }
    }
}

impl<S: MetricSink> MetricSink for Buffered<S> {
    fn on_period(&mut self, record: &PeriodRecord) {
        // The period boundary is the flush point: drain the queued
        // events first (they precede the record in stream order), then
        // deliver the record directly — a flush-point record never
        // touches the bounded queue, so it can never be dropped.
        self.drain();
        self.inner.on_period(record);
    }

    fn on_repack(&mut self, event: &RepackEvent) {
        self.enqueue(SinkEvent::Repack(*event));
    }

    fn on_migration(&mut self, period: usize, vm: usize, from: usize, to: usize) {
        self.enqueue(SinkEvent::Migration {
            period,
            vm,
            from,
            to,
        });
    }

    fn on_violation(&mut self, event: &ViolationEvent) {
        self.enqueue(SinkEvent::Violation(*event));
    }

    fn on_class_energy(&mut self, period: usize, class: usize, name: &str, period_joules: f64) {
        self.enqueue(SinkEvent::ClassEnergy {
            period,
            class,
            name: name.to_string(),
            period_joules,
        });
    }

    fn on_admit(&mut self, sample: usize, vm: usize, server: usize) {
        self.enqueue(SinkEvent::Admit { sample, vm, server });
    }

    fn on_server_fail(&mut self, sample: usize, server: usize, residents: usize) {
        self.enqueue(SinkEvent::ServerFail {
            sample,
            server,
            residents,
        });
    }

    fn on_server_recover(&mut self, sample: usize, server: usize) {
        self.enqueue(SinkEvent::ServerRecover { sample, server });
    }

    fn on_summary(&mut self, report: &SimReport) {
        // Everything still queued is delivered before the summary, and
        // the summary itself is never queued (nor droppable): the
        // inner sink sees it exactly once, with the adapter's drop
        // counter folded in. The fold is **additive** — a controller
        // report always arrives with `sink_dropped_events == 0`, so
        // standalone behaviour is unchanged, but when adapters nest
        // (e.g. [`Threaded`]`<Buffered<S>>`) each layer adds its own
        // drops instead of the inner layer overwriting the outer
        // layer's count.
        self.drain();
        let mut report = report.clone();
        report.sink_dropped_events += self.dropped;
        self.inner.on_summary(&report);
    }
}

/// Messages crossing the channel between a [`Threaded`] producer and
/// its worker thread. Batches only ever cross at flush points, so the
/// channel bound is small and the replay loop blocks at most once per
/// period while the worker catches up.
enum WorkerMsg {
    /// A drained batch of queued events, in arrival order. A flush at
    /// a period boundary appends the (never-droppable)
    /// [`SinkEvent::Period`] record as the batch's final element.
    Batch(Vec<SinkEvent>),
    /// The terminal report, drop counter already folded in.
    Summary(SimReport),
}

/// A [`Buffered`]-compatible adapter that delivers batches on a real
/// `std::thread` worker, overlapping sink I/O with simulation.
///
/// The producer side is **identical** to [`Buffered`]: events land in
/// a bounded in-memory queue and an overflowing queue drops the
/// incoming event and counts it. Because the drop decision happens on
/// the replay thread against the same bounded queue, the set of
/// dropped events — and therefore everything the wrapped sink
/// eventually sees — is bit-for-bit the sequence [`Buffered`] would
/// have delivered, regardless of thread scheduling. Only the *timing*
/// of delivery differs: at each flush point the queued batch crosses a
/// small bounded channel to the worker instead of running inline.
///
/// The wrapped sink **moves into** the worker thread — this is the
/// answer to the `&mut self` handoff problem: the replay loop never
/// touches the sink concurrently because it cannot reach it at all.
/// [`finish`](Self::finish) closes the channel, joins the worker and
/// returns the sink. If the sink panicked while consuming events the
/// join surfaces it as the typed
/// [`SimError::SinkWorkerPanicked`]
/// instead of a poisoned lock or a hung join; events sent after the
/// panic are discarded without blocking.
///
/// Nesting composes: the drop-counter fold into
/// [`SimReport::sink_dropped_events`] is additive on both adapters, so
/// `Threaded<Buffered<S>>` (or the reverse) reports the *sum* of both
/// layers' drops.
///
/// ```
/// use cavm_sim::sink::Threaded;
/// use cavm_sim::MetricSink;
///
/// #[derive(Default)]
/// struct Count(usize);
/// impl MetricSink for Count {
///     fn on_admit(&mut self, _s: usize, _vm: usize, _server: usize) {
///         self.0 += 1;
///     }
/// }
///
/// let mut sink = Threaded::new(Count::default(), 8);
/// sink.on_admit(0, 1, 0);
/// sink.flush();
/// let count = sink.finish().expect("worker joined");
/// assert_eq!(count.0, 1);
/// ```
pub struct Threaded<S> {
    queue: VecDeque<SinkEvent>,
    capacity: usize,
    dropped: u64,
    tx: Option<mpsc::SyncSender<WorkerMsg>>,
    worker: Option<thread::JoinHandle<S>>,
}

impl<S> fmt::Debug for Threaded<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Threaded")
            .field("queued", &self.queue.len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped)
            .field("worker_alive", &self.worker.is_some())
            .finish()
    }
}

impl<S: MetricSink + Send + 'static> Threaded<S> {
    /// Moves `inner` into a spawned worker thread and wraps it behind
    /// a producer-side queue of at most `capacity` events (clamped up
    /// to 1, exactly like [`Buffered::new`]). Period records and the
    /// terminal summary are flushed at the boundary itself and can
    /// never be dropped.
    pub fn new(inner: S, capacity: usize) -> Self {
        // Bound 2: one batch in flight plus one queued keeps the
        // worker busy while bounding memory; the producer only ever
        // blocks at a flush point, never per event.
        let (tx, rx) = mpsc::sync_channel::<WorkerMsg>(2);
        let worker = thread::Builder::new()
            .name("cavm-sink".into())
            .spawn(move || {
                let mut sink = inner;
                while let Ok(msg) = rx.recv() {
                    match msg {
                        WorkerMsg::Batch(events) => {
                            for event in events {
                                event.deliver(&mut sink);
                            }
                        }
                        WorkerMsg::Summary(report) => sink.on_summary(&report),
                    }
                }
                sink
            })
            .expect("spawn sink worker thread");
        Self {
            queue: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            capacity: capacity.max(1),
            dropped: 0,
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// Events currently queued on the producer side, not yet handed to
    /// the worker.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Events dropped on queue overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Hands every queued event to the worker as one batch, in arrival
    /// order. Called automatically on every completed period and at
    /// the terminal summary. Blocks only while the channel's small
    /// batch window is full; if the worker has panicked the batch is
    /// discarded without blocking (the panic surfaces at
    /// [`finish`](Self::finish)).
    pub fn flush(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        let batch: Vec<SinkEvent> = self.queue.drain(..).collect();
        self.send(WorkerMsg::Batch(batch));
    }

    /// Closes the channel, joins the worker and returns the wrapped
    /// sink. Any still-queued events are flushed first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SinkWorkerPanicked`] if the wrapped sink
    /// panicked while consuming events; the sink is lost with the
    /// unwound thread. The join itself can never hang: dropping the
    /// sender ends the worker loop.
    pub fn finish(mut self) -> crate::Result<S> {
        self.flush();
        drop(self.tx.take());
        let worker = self.worker.take().expect("finish consumes the worker");
        worker.join().map_err(|_| SimError::SinkWorkerPanicked)
    }

    /// Enqueues one event, dropping (and counting) it when the queue
    /// is at capacity — byte-identical drop logic to
    /// [`Buffered::enqueue`], which is what makes the adapter
    /// deterministic under any thread schedule.
    fn enqueue(&mut self, event: SinkEvent) {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
        } else {
            self.queue.push_back(event);
        }
    }

    fn send(&mut self, msg: WorkerMsg) {
        if let Some(tx) = &self.tx {
            // A send error means the worker panicked and dropped the
            // receiver; discard silently — `finish` reports the panic.
            let _ = tx.send(msg);
        }
    }
}

impl<S> Drop for Threaded<S> {
    fn drop(&mut self) {
        // `finish` already took both handles on the happy path. If the
        // adapter is dropped without `finish` (e.g. unwinding out of a
        // failed replay), close the channel and join so the worker
        // never outlives the adapter; a worker panic is swallowed here
        // because `drop` cannot report it.
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl<S: MetricSink + Send + 'static> MetricSink for Threaded<S> {
    fn on_period(&mut self, record: &PeriodRecord) {
        // Same flush point as `Buffered::on_period`: the queued events
        // precede the record in stream order and the record itself
        // never touches the bounded queue, so it can never be dropped.
        let mut batch: Vec<SinkEvent> = self.queue.drain(..).collect();
        batch.push(SinkEvent::Period(record.clone()));
        self.send(WorkerMsg::Batch(batch));
    }

    fn on_repack(&mut self, event: &RepackEvent) {
        self.enqueue(SinkEvent::Repack(*event));
    }

    fn on_migration(&mut self, period: usize, vm: usize, from: usize, to: usize) {
        self.enqueue(SinkEvent::Migration {
            period,
            vm,
            from,
            to,
        });
    }

    fn on_violation(&mut self, event: &ViolationEvent) {
        self.enqueue(SinkEvent::Violation(*event));
    }

    fn on_class_energy(&mut self, period: usize, class: usize, name: &str, period_joules: f64) {
        self.enqueue(SinkEvent::ClassEnergy {
            period,
            class,
            name: name.to_string(),
            period_joules,
        });
    }

    fn on_admit(&mut self, sample: usize, vm: usize, server: usize) {
        self.enqueue(SinkEvent::Admit { sample, vm, server });
    }

    fn on_server_fail(&mut self, sample: usize, server: usize, residents: usize) {
        self.enqueue(SinkEvent::ServerFail {
            sample,
            server,
            residents,
        });
    }

    fn on_server_recover(&mut self, sample: usize, server: usize) {
        self.enqueue(SinkEvent::ServerRecover { sample, server });
    }

    fn on_summary(&mut self, report: &SimReport) {
        // Same order and additive drop fold as `Buffered::on_summary`:
        // queued events first, then the summary exactly once, never
        // droppable.
        self.flush();
        let mut report = report.clone();
        report.sink_dropped_events += self.dropped;
        self.send(WorkerMsg::Summary(report));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::RepackReason;

    /// Records the call order and the summary it received.
    #[derive(Default)]
    struct Recorder {
        calls: Vec<String>,
        summary: Option<SimReport>,
    }

    impl MetricSink for Recorder {
        fn on_period(&mut self, record: &PeriodRecord) {
            self.calls.push(format!("period{}", record.period));
        }

        fn on_repack(&mut self, event: &RepackEvent) {
            self.calls.push(format!("repack@{}", event.sample));
        }

        fn on_migration(&mut self, _period: usize, vm: usize, _from: usize, _to: usize) {
            self.calls.push(format!("migrate{vm}"));
        }

        fn on_violation(&mut self, event: &ViolationEvent) {
            self.calls.push(format!("violation@{}", event.sample));
        }

        fn on_class_energy(&mut self, period: usize, _class: usize, name: &str, _joules: f64) {
            self.calls.push(format!("energy{period}:{name}"));
        }

        fn on_admit(&mut self, _sample: usize, vm: usize, _server: usize) {
            self.calls.push(format!("admit{vm}"));
        }

        fn on_server_fail(&mut self, sample: usize, server: usize, _residents: usize) {
            self.calls.push(format!("fail{server}@{sample}"));
        }

        fn on_server_recover(&mut self, sample: usize, server: usize) {
            self.calls.push(format!("recover{server}@{sample}"));
        }

        fn on_summary(&mut self, report: &SimReport) {
            self.calls.push("summary".into());
            self.summary = Some(report.clone());
        }
    }

    fn violation(sample: usize) -> ViolationEvent {
        ViolationEvent {
            sample,
            period: 0,
            server: 0,
            class: 0,
            demand: 9.0,
            capacity: 8.0,
        }
    }

    fn period(period: usize) -> PeriodRecord {
        PeriodRecord {
            period,
            servers_used: 2,
            max_violation_ratio: 0.0,
            migrations: 0,
            pcp_clusters: None,
        }
    }

    fn report() -> SimReport {
        SimReport {
            policy: "BFD".into(),
            dynamic_dvfs: false,
            energy: cavm_power::EnergyMeter::new(),
            max_violation_percent: 0.0,
            mean_violation_percent: 0.0,
            violation_instances: 0,
            periods: vec![],
            classes: vec![],
            freq_histogram: vec![],
            freq_levels_ghz: vec![],
            online_admissions: 0,
            offcycle_repacks: 0,
            sink_dropped_events: 0,
            server_failures: 0,
            evacuations: 0,
            deferred_peak: 0,
        }
    }

    #[test]
    fn events_batch_until_the_period_boundary_in_order() {
        let mut sink = Buffered::new(Recorder::default(), 64);
        sink.on_admit(3, 7, 1);
        sink.on_violation(&violation(5));
        sink.on_repack(&RepackEvent {
            sample: 6,
            period: 0,
            reason: RepackReason::Fragmentation {
                estimate: 1,
                active: 3,
            },
            servers_before: 3,
            servers_after: 1,
            migrations: 2,
            slack_after: Some(1),
        });
        assert!(sink.inner().calls.is_empty(), "nothing before the flush");
        assert_eq!(sink.queued(), 3);
        sink.on_period(&period(0));
        assert_eq!(
            sink.inner().calls,
            vec!["admit7", "violation@5", "repack@6", "period0"],
            "arrival order survives the batch"
        );
        assert_eq!(sink.queued(), 0);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        let mut sink = Buffered::new(Recorder::default(), 2);
        for k in 0..5 {
            sink.on_violation(&violation(k));
        }
        assert_eq!(sink.queued(), 2);
        assert_eq!(sink.dropped(), 3);
        sink.drain();
        assert_eq!(sink.inner().calls, vec!["violation@0", "violation@1"]);
        // The counter survives the drain (it is a run total).
        assert_eq!(sink.dropped(), 3);
    }

    #[test]
    fn summary_drains_first_and_carries_the_drop_counter() {
        let mut sink = Buffered::new(Recorder::default(), 2);
        for k in 0..4 {
            sink.on_violation(&violation(k));
        }
        sink.on_summary(&report());
        let recorder = sink.into_inner();
        assert_eq!(
            recorder.calls,
            vec!["violation@0", "violation@1", "summary"],
            "queued events deliver before the summary; the summary is never dropped"
        );
        assert_eq!(
            recorder
                .summary
                .expect("summary delivered")
                .sink_dropped_events,
            2
        );
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut sink = Buffered::new(Recorder::default(), 0);
        sink.on_admit(0, 1, 0);
        sink.on_admit(1, 2, 0);
        assert_eq!(sink.queued(), 1);
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn fault_events_batch_in_order_and_overflow_counts_them() {
        let mut sink = Buffered::new(Recorder::default(), 64);
        sink.on_server_fail(4, 2, 3);
        sink.on_migration(0, 7, 2, 1);
        sink.on_repack(&RepackEvent {
            sample: 4,
            period: 0,
            reason: RepackReason::Evacuation { server: 2 },
            servers_before: 3,
            servers_after: 3,
            migrations: 1,
            slack_after: None,
        });
        sink.on_server_recover(9, 2);
        assert!(sink.inner().calls.is_empty(), "nothing before the flush");
        sink.on_period(&period(0));
        assert_eq!(
            sink.inner().calls,
            vec!["fail2@4", "migrate7", "repack@4", "recover2@9", "period0"],
            "failure, evacuation and recovery keep stream order"
        );
        // Fail/recover events are droppable like any queued event.
        let mut sink = Buffered::new(Recorder::default(), 1);
        sink.on_server_fail(0, 0, 0);
        sink.on_server_recover(1, 0);
        assert_eq!(sink.queued(), 1);
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn into_inner_drains_the_queue() {
        let mut sink = Buffered::new(Recorder::default(), 8);
        sink.on_migration(1, 4, 0, 2);
        let recorder = sink.into_inner();
        assert_eq!(recorder.calls, vec!["migrate4"]);
    }

    // ---- Threaded transparency suite: mirrors the Buffered tests
    // above, event for event, with delivery on the worker thread.

    #[test]
    fn threaded_events_batch_until_the_period_boundary_in_order() {
        let mut sink = Threaded::new(Recorder::default(), 64);
        sink.on_admit(3, 7, 1);
        sink.on_violation(&violation(5));
        sink.on_repack(&RepackEvent {
            sample: 6,
            period: 0,
            reason: RepackReason::Fragmentation {
                estimate: 1,
                active: 3,
            },
            servers_before: 3,
            servers_after: 1,
            migrations: 2,
            slack_after: Some(1),
        });
        assert_eq!(sink.queued(), 3);
        sink.on_period(&period(0));
        assert_eq!(sink.queued(), 0);
        assert_eq!(sink.dropped(), 0);
        let recorder = sink.finish().expect("worker joined");
        assert_eq!(
            recorder.calls,
            vec!["admit7", "violation@5", "repack@6", "period0"],
            "arrival order survives the batch and the thread hop"
        );
    }

    #[test]
    fn threaded_overflow_drops_newest_and_counts_exactly() {
        let mut sink = Threaded::new(Recorder::default(), 2);
        for k in 0..5 {
            sink.on_violation(&violation(k));
        }
        // Drop decisions are made on the producer side before anything
        // crosses the channel, so the counter is exact and scheduler-
        // independent.
        assert_eq!(sink.queued(), 2);
        assert_eq!(sink.dropped(), 3);
        sink.flush();
        assert_eq!(sink.dropped(), 3, "the counter survives the flush");
        let recorder = sink.finish().expect("worker joined");
        assert_eq!(recorder.calls, vec!["violation@0", "violation@1"]);
    }

    #[test]
    fn threaded_summary_drains_first_and_carries_the_drop_counter() {
        let mut sink = Threaded::new(Recorder::default(), 2);
        for k in 0..4 {
            sink.on_violation(&violation(k));
        }
        sink.on_summary(&report());
        let recorder = sink.finish().expect("worker joined");
        assert_eq!(
            recorder.calls,
            vec!["violation@0", "violation@1", "summary"],
            "queued events deliver before the summary; the summary is never dropped"
        );
        assert_eq!(
            recorder
                .summary
                .expect("summary delivered")
                .sink_dropped_events,
            2
        );
    }

    #[test]
    fn threaded_zero_capacity_is_clamped_to_one() {
        let mut sink = Threaded::new(Recorder::default(), 0);
        sink.on_admit(0, 1, 0);
        sink.on_admit(1, 2, 0);
        assert_eq!(sink.queued(), 1);
        assert_eq!(sink.dropped(), 1);
        let recorder = sink.finish().expect("worker joined");
        assert_eq!(recorder.calls, vec!["admit1"]);
    }

    #[test]
    fn threaded_fault_events_batch_in_order_and_overflow_counts_them() {
        let mut sink = Threaded::new(Recorder::default(), 64);
        sink.on_server_fail(4, 2, 3);
        sink.on_migration(0, 7, 2, 1);
        sink.on_repack(&RepackEvent {
            sample: 4,
            period: 0,
            reason: RepackReason::Evacuation { server: 2 },
            servers_before: 3,
            servers_after: 3,
            migrations: 1,
            slack_after: None,
        });
        sink.on_server_recover(9, 2);
        sink.on_period(&period(0));
        let recorder = sink.finish().expect("worker joined");
        assert_eq!(
            recorder.calls,
            vec!["fail2@4", "migrate7", "repack@4", "recover2@9", "period0"],
            "failure, evacuation and recovery keep stream order"
        );
        // Fail/recover events are droppable like any queued event.
        let mut sink = Threaded::new(Recorder::default(), 1);
        sink.on_server_fail(0, 0, 0);
        sink.on_server_recover(1, 0);
        assert_eq!(sink.queued(), 1);
        assert_eq!(sink.dropped(), 1);
        drop(sink); // Drop joins the worker without finish().
    }

    #[test]
    fn threaded_finish_without_flush_delivers_queued_events() {
        let mut sink = Threaded::new(Recorder::default(), 8);
        sink.on_migration(1, 4, 0, 2);
        let recorder = sink.finish().expect("worker joined");
        assert_eq!(recorder.calls, vec!["migrate4"]);
    }

    /// Drives identical pseudo-random event sequences through
    /// `Buffered` and `Threaded` across several capacities: the inner
    /// recorder must see the exact same call sequence and the exact
    /// same folded drop counter — the pinning guarantee the module
    /// docs promise.
    #[test]
    fn threaded_is_pinned_event_for_event_against_buffered() {
        for &capacity in &[1usize, 2, 3, 8, 64] {
            let mut state: u64 = 0x2013_0000 ^ capacity as u64;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            let mut buffered = Buffered::new(Recorder::default(), capacity);
            let mut threaded = Threaded::new(Recorder::default(), capacity);
            let mut periods = 0usize;
            for k in 0..400 {
                let sinks: [&mut dyn MetricSink; 2] = [&mut buffered, &mut threaded];
                let op = next() % 9;
                for sink in sinks {
                    match op {
                        0 => sink.on_admit(k, k % 17, k % 5),
                        1 => sink.on_violation(&violation(k)),
                        2 => sink.on_migration(periods, k % 13, 0, 1),
                        3 => sink.on_class_energy(periods, 0, "xeon", k as f64),
                        4 => sink.on_server_fail(k, k % 4, 2),
                        5 => sink.on_server_recover(k, k % 4),
                        6 => sink.on_repack(&RepackEvent {
                            sample: k,
                            period: periods,
                            reason: RepackReason::Periodic,
                            servers_before: 4,
                            servers_after: 3,
                            migrations: 1,
                            slack_after: None,
                        }),
                        _ => sink.on_period(&period(periods)),
                    }
                }
                if op >= 7 {
                    periods += 1;
                }
            }
            buffered.on_summary(&report());
            threaded.on_summary(&report());
            assert_eq!(buffered.dropped(), threaded.dropped());
            let pinned = buffered.into_inner();
            let recorded = threaded.finish().expect("worker joined");
            assert_eq!(
                pinned.calls, recorded.calls,
                "capacity {capacity}: Threaded must deliver the exact Buffered sequence"
            );
            assert_eq!(
                pinned.summary.as_ref().map(|r| r.sink_dropped_events),
                recorded.summary.as_ref().map(|r| r.sink_dropped_events)
            );
        }
    }

    /// A sink that panics while consuming an event on the worker.
    struct PanicsOnAdmit;

    impl MetricSink for PanicsOnAdmit {
        fn on_admit(&mut self, _sample: usize, _vm: usize, _server: usize) {
            panic!("sink exploded mid-delivery");
        }
    }

    #[test]
    fn panic_in_sink_joins_as_typed_error_without_deadlock() {
        let mut sink = Threaded::new(PanicsOnAdmit, 1);
        sink.on_admit(0, 1, 0);
        sink.flush();
        // Keep producing after the worker has (or is about to have)
        // panicked: sends must either land or fail fast — a 1-slot
        // queue over a 2-batch channel would deadlock here if a dead
        // receiver could block a send.
        for k in 0..32 {
            sink.on_admit(k, k, 0);
            sink.flush();
        }
        assert_eq!(sink.finish().map(|_| ()), Err(SimError::SinkWorkerPanicked));
    }

    // ---- nesting: the additive drop fold composes in either order.

    #[test]
    fn threaded_around_buffered_sums_drop_counters() {
        // Outer Threaded drops 2 of 4 (capacity 2); its surviving
        // batch then overflows the inner Buffered (capacity 1) for 1
        // more drop on the worker side.
        let inner = Buffered::new(Recorder::default(), 1);
        let mut sink = Threaded::new(inner, 2);
        for k in 0..4 {
            sink.on_violation(&violation(k));
        }
        sink.on_summary(&report());
        assert_eq!(sink.dropped(), 2);
        let buffered = sink.finish().expect("worker joined");
        assert_eq!(buffered.dropped(), 1);
        let recorder = buffered.into_inner();
        assert_eq!(recorder.calls, vec!["violation@0", "summary"]);
        assert_eq!(
            recorder
                .summary
                .expect("summary delivered")
                .sink_dropped_events,
            3,
            "outer 2 + inner 1, no overwrite and no double count"
        );
    }

    #[test]
    fn buffered_around_threaded_sums_drop_counters() {
        let inner = Threaded::new(Recorder::default(), 1);
        let mut sink = Buffered::new(inner, 2);
        for k in 0..4 {
            sink.on_violation(&violation(k));
        }
        sink.on_summary(&report());
        assert_eq!(sink.dropped(), 2);
        let threaded = sink.into_inner();
        assert_eq!(threaded.dropped(), 1);
        let recorder = threaded.finish().expect("worker joined");
        assert_eq!(recorder.calls, vec!["violation@0", "summary"]);
        assert_eq!(
            recorder
                .summary
                .expect("summary delivered")
                .sink_dropped_events,
            3,
            "outer 2 + inner 1, summed through the thread hop"
        );
    }
}
