//! Sink adapters — composable wrappers around a [`MetricSink`].
//!
//! The controller delivers every event synchronously: a sink that
//! renders a dashboard, writes a socket or flushes a file would stall
//! the replay loop on every violation sample. [`Buffered`] decouples
//! the two rates: events land in a **bounded** in-memory queue (an
//! overflowing queue *drops* the incoming event and counts it — the
//! replay loop never blocks and never grows memory without bound) and
//! the queue drains into the inner sink in batches at the natural
//! flush points — every completed period, at the terminal summary, or
//! whenever the caller asks via [`Buffered::drain`].
//!
//! The terminal [`SimReport`] an inner sink receives through
//! [`MetricSink::on_summary`] carries the adapter's drop counter in
//! [`SimReport::sink_dropped_events`], so a consumer can tell a quiet
//! run from a saturated queue.
//!
//! ```
//! use cavm_sim::sink::{Buffered, SinkEvent};
//! use cavm_sim::{MetricSink, PeriodRecord};
//!
//! /// Counts what actually reaches the expensive consumer.
//! #[derive(Default)]
//! struct Dashboard {
//!     violations: usize,
//! }
//!
//! impl MetricSink for Dashboard {
//!     fn on_violation(&mut self, _event: &cavm_sim::ViolationEvent) {
//!         self.violations += 1;
//!     }
//! }
//!
//! let mut sink = Buffered::new(Dashboard::default(), 2);
//! for sample in 0..5 {
//!     sink.on_violation(&cavm_sim::ViolationEvent {
//!         sample,
//!         period: 0,
//!         server: 0,
//!         class: 0,
//!         demand: 9.0,
//!         capacity: 8.0,
//!     });
//! }
//! // Nothing delivered yet, three of five overflowed the queue.
//! assert_eq!(sink.inner().violations, 0);
//! assert_eq!(sink.queued(), 2);
//! assert_eq!(sink.dropped(), 3);
//! sink.drain();
//! assert_eq!(sink.inner().violations, 2);
//! ```

use crate::controller::{MetricSink, RepackEvent, ViolationEvent};
use crate::report::{PeriodRecord, SimReport};
use std::collections::VecDeque;

/// One buffered controller event, in delivery order.
#[derive(Debug, Clone, PartialEq)]
pub enum SinkEvent {
    /// A completed period ([`MetricSink::on_period`]).
    Period(PeriodRecord),
    /// A re-pack ([`MetricSink::on_repack`]).
    Repack(RepackEvent),
    /// A cross-boundary migration ([`MetricSink::on_migration`]).
    Migration {
        /// Placement period of the migration.
        period: usize,
        /// The VM that moved.
        vm: usize,
        /// Source server.
        from: usize,
        /// Destination server.
        to: usize,
    },
    /// A capacity violation sample ([`MetricSink::on_violation`]).
    Violation(ViolationEvent),
    /// A class's per-period energy ([`MetricSink::on_class_energy`]).
    ClassEnergy {
        /// Placement period the energy was integrated over.
        period: usize,
        /// Fleet class index.
        class: usize,
        /// Class display name.
        name: String,
        /// Joules the class consumed over the period.
        period_joules: f64,
    },
    /// An incremental admission ([`MetricSink::on_admit`]).
    Admit {
        /// Global sample index of the admission.
        sample: usize,
        /// The admitted VM.
        vm: usize,
        /// The hosting server.
        server: usize,
    },
    /// A server failure ([`MetricSink::on_server_fail`]).
    ServerFail {
        /// Global sample index of the failure.
        sample: usize,
        /// The failed server.
        server: usize,
        /// VMs resident at the instant of failure (about to
        /// emergency-evacuate).
        residents: usize,
    },
    /// A server recovery ([`MetricSink::on_server_recover`]).
    ServerRecover {
        /// Global sample index of the recovery.
        sample: usize,
        /// The recovered server.
        server: usize,
    },
}

/// A bounded, batching adapter around an inner [`MetricSink`]. See the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct Buffered<S> {
    inner: S,
    queue: VecDeque<SinkEvent>,
    capacity: usize,
    dropped: u64,
}

impl<S: MetricSink> Buffered<S> {
    /// Wraps `inner` behind a queue of at most `capacity` events
    /// (clamped up to 1 — a zero-capacity queue would drop every
    /// between-boundary event unseen). Period records and the terminal
    /// summary are delivered at the flush points themselves and are
    /// never queued, so they can never be dropped.
    pub fn new(inner: S, capacity: usize) -> Self {
        Self {
            inner,
            queue: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped sink, mutably.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Drains the queue and returns the wrapped sink.
    pub fn into_inner(mut self) -> S {
        self.drain();
        self.inner
    }

    /// Events currently queued and not yet delivered.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Events dropped on queue overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Delivers every queued event to the inner sink, in arrival
    /// order. Called automatically on every completed period and at
    /// the terminal summary.
    pub fn drain(&mut self) {
        while let Some(event) = self.queue.pop_front() {
            match event {
                SinkEvent::Period(record) => self.inner.on_period(&record),
                SinkEvent::Repack(event) => self.inner.on_repack(&event),
                SinkEvent::Migration {
                    period,
                    vm,
                    from,
                    to,
                } => self.inner.on_migration(period, vm, from, to),
                SinkEvent::Violation(event) => self.inner.on_violation(&event),
                SinkEvent::ClassEnergy {
                    period,
                    class,
                    name,
                    period_joules,
                } => self
                    .inner
                    .on_class_energy(period, class, &name, period_joules),
                SinkEvent::Admit { sample, vm, server } => self.inner.on_admit(sample, vm, server),
                SinkEvent::ServerFail {
                    sample,
                    server,
                    residents,
                } => self.inner.on_server_fail(sample, server, residents),
                SinkEvent::ServerRecover { sample, server } => {
                    self.inner.on_server_recover(sample, server)
                }
            }
        }
    }

    /// Enqueues one event, dropping (and counting) it when the queue
    /// is at capacity.
    fn enqueue(&mut self, event: SinkEvent) {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
        } else {
            self.queue.push_back(event);
        }
    }
}

impl<S: MetricSink> MetricSink for Buffered<S> {
    fn on_period(&mut self, record: &PeriodRecord) {
        // The period boundary is the flush point: drain the queued
        // events first (they precede the record in stream order), then
        // deliver the record directly — a flush-point record never
        // touches the bounded queue, so it can never be dropped.
        self.drain();
        self.inner.on_period(record);
    }

    fn on_repack(&mut self, event: &RepackEvent) {
        self.enqueue(SinkEvent::Repack(*event));
    }

    fn on_migration(&mut self, period: usize, vm: usize, from: usize, to: usize) {
        self.enqueue(SinkEvent::Migration {
            period,
            vm,
            from,
            to,
        });
    }

    fn on_violation(&mut self, event: &ViolationEvent) {
        self.enqueue(SinkEvent::Violation(*event));
    }

    fn on_class_energy(&mut self, period: usize, class: usize, name: &str, period_joules: f64) {
        self.enqueue(SinkEvent::ClassEnergy {
            period,
            class,
            name: name.to_string(),
            period_joules,
        });
    }

    fn on_admit(&mut self, sample: usize, vm: usize, server: usize) {
        self.enqueue(SinkEvent::Admit { sample, vm, server });
    }

    fn on_server_fail(&mut self, sample: usize, server: usize, residents: usize) {
        self.enqueue(SinkEvent::ServerFail {
            sample,
            server,
            residents,
        });
    }

    fn on_server_recover(&mut self, sample: usize, server: usize) {
        self.enqueue(SinkEvent::ServerRecover { sample, server });
    }

    fn on_summary(&mut self, report: &SimReport) {
        // Everything still queued is delivered before the summary, and
        // the summary itself is never queued (nor droppable): the
        // inner sink sees it exactly once, with the adapter's drop
        // counter folded in.
        self.drain();
        let mut report = report.clone();
        report.sink_dropped_events = self.dropped;
        self.inner.on_summary(&report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::RepackReason;

    /// Records the call order and the summary it received.
    #[derive(Default)]
    struct Recorder {
        calls: Vec<String>,
        summary: Option<SimReport>,
    }

    impl MetricSink for Recorder {
        fn on_period(&mut self, record: &PeriodRecord) {
            self.calls.push(format!("period{}", record.period));
        }

        fn on_repack(&mut self, event: &RepackEvent) {
            self.calls.push(format!("repack@{}", event.sample));
        }

        fn on_migration(&mut self, _period: usize, vm: usize, _from: usize, _to: usize) {
            self.calls.push(format!("migrate{vm}"));
        }

        fn on_violation(&mut self, event: &ViolationEvent) {
            self.calls.push(format!("violation@{}", event.sample));
        }

        fn on_class_energy(&mut self, period: usize, _class: usize, name: &str, _joules: f64) {
            self.calls.push(format!("energy{period}:{name}"));
        }

        fn on_admit(&mut self, _sample: usize, vm: usize, _server: usize) {
            self.calls.push(format!("admit{vm}"));
        }

        fn on_server_fail(&mut self, sample: usize, server: usize, _residents: usize) {
            self.calls.push(format!("fail{server}@{sample}"));
        }

        fn on_server_recover(&mut self, sample: usize, server: usize) {
            self.calls.push(format!("recover{server}@{sample}"));
        }

        fn on_summary(&mut self, report: &SimReport) {
            self.calls.push("summary".into());
            self.summary = Some(report.clone());
        }
    }

    fn violation(sample: usize) -> ViolationEvent {
        ViolationEvent {
            sample,
            period: 0,
            server: 0,
            class: 0,
            demand: 9.0,
            capacity: 8.0,
        }
    }

    fn period(period: usize) -> PeriodRecord {
        PeriodRecord {
            period,
            servers_used: 2,
            max_violation_ratio: 0.0,
            migrations: 0,
            pcp_clusters: None,
        }
    }

    fn report() -> SimReport {
        SimReport {
            policy: "BFD".into(),
            dynamic_dvfs: false,
            energy: cavm_power::EnergyMeter::new(),
            max_violation_percent: 0.0,
            mean_violation_percent: 0.0,
            violation_instances: 0,
            periods: vec![],
            classes: vec![],
            freq_histogram: vec![],
            freq_levels_ghz: vec![],
            online_admissions: 0,
            offcycle_repacks: 0,
            sink_dropped_events: 0,
            server_failures: 0,
            evacuations: 0,
            deferred_peak: 0,
        }
    }

    #[test]
    fn events_batch_until_the_period_boundary_in_order() {
        let mut sink = Buffered::new(Recorder::default(), 64);
        sink.on_admit(3, 7, 1);
        sink.on_violation(&violation(5));
        sink.on_repack(&RepackEvent {
            sample: 6,
            period: 0,
            reason: RepackReason::Fragmentation {
                estimate: 1,
                active: 3,
            },
            servers_before: 3,
            servers_after: 1,
            migrations: 2,
            slack_after: Some(1),
        });
        assert!(sink.inner().calls.is_empty(), "nothing before the flush");
        assert_eq!(sink.queued(), 3);
        sink.on_period(&period(0));
        assert_eq!(
            sink.inner().calls,
            vec!["admit7", "violation@5", "repack@6", "period0"],
            "arrival order survives the batch"
        );
        assert_eq!(sink.queued(), 0);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        let mut sink = Buffered::new(Recorder::default(), 2);
        for k in 0..5 {
            sink.on_violation(&violation(k));
        }
        assert_eq!(sink.queued(), 2);
        assert_eq!(sink.dropped(), 3);
        sink.drain();
        assert_eq!(sink.inner().calls, vec!["violation@0", "violation@1"]);
        // The counter survives the drain (it is a run total).
        assert_eq!(sink.dropped(), 3);
    }

    #[test]
    fn summary_drains_first_and_carries_the_drop_counter() {
        let mut sink = Buffered::new(Recorder::default(), 2);
        for k in 0..4 {
            sink.on_violation(&violation(k));
        }
        sink.on_summary(&report());
        let recorder = sink.into_inner();
        assert_eq!(
            recorder.calls,
            vec!["violation@0", "violation@1", "summary"],
            "queued events deliver before the summary; the summary is never dropped"
        );
        assert_eq!(
            recorder
                .summary
                .expect("summary delivered")
                .sink_dropped_events,
            2
        );
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut sink = Buffered::new(Recorder::default(), 0);
        sink.on_admit(0, 1, 0);
        sink.on_admit(1, 2, 0);
        assert_eq!(sink.queued(), 1);
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn fault_events_batch_in_order_and_overflow_counts_them() {
        let mut sink = Buffered::new(Recorder::default(), 64);
        sink.on_server_fail(4, 2, 3);
        sink.on_migration(0, 7, 2, 1);
        sink.on_repack(&RepackEvent {
            sample: 4,
            period: 0,
            reason: RepackReason::Evacuation { server: 2 },
            servers_before: 3,
            servers_after: 3,
            migrations: 1,
            slack_after: None,
        });
        sink.on_server_recover(9, 2);
        assert!(sink.inner().calls.is_empty(), "nothing before the flush");
        sink.on_period(&period(0));
        assert_eq!(
            sink.inner().calls,
            vec!["fail2@4", "migrate7", "repack@4", "recover2@9", "period0"],
            "failure, evacuation and recovery keep stream order"
        );
        // Fail/recover events are droppable like any queued event.
        let mut sink = Buffered::new(Recorder::default(), 1);
        sink.on_server_fail(0, 0, 0);
        sink.on_server_recover(1, 0);
        assert_eq!(sink.queued(), 1);
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn into_inner_drains_the_queue() {
        let mut sink = Buffered::new(Recorder::default(), 8);
        sink.on_migration(1, 4, 0, 2);
        let recorder = sink.into_inner();
        assert_eq!(recorder.calls, vec!["migrate4"]);
    }
}
