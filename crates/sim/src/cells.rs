//! Sharded placement cells — the controller that breaks the O(n²)
//! correlation wall.
//!
//! The flat [`DatacenterController`] keeps one dense
//! [`CostMatrix`](cavm_core::corr::CostMatrix) over every VM id it has
//! ever seen, so every monitoring tick costs O(n²) pair updates — 13 ms
//! per tick at n = 4096 and unusable at 100k VMs. [`ShardedController`]
//! shards the datacenter into **placement cells**
//! ([`cavm_core::cells`]): each cell owns a slice of the server fleet
//! ([`partition_fleet`]) and runs its *own* flat controller over only
//! its residents, so the per-tick cost drops to O(Σ cellᵢ²) — a
//! `cells`-fold reduction at equal occupancy.
//!
//! Arrivals are steered between cells by a constant-size
//! [`MomentSketch`] router rather than any dense structure: each VM is
//! summarized at arrival into running moments plus an 8-bucket phase
//! envelope, and the router picks the feasible cell whose projected
//! **worst-phase aggregate** grows the least — the cheap streaming
//! analogue of Eqn (1)'s "don't co-locate VMs that peak together" —
//! in O(cells) time.
//!
//! # Exactness
//!
//! Inside a cell nothing is approximated: members are placed, DVFS'd
//! and accounted by the unmodified flat controller with exact Eqn
//! (1)/(2) quantities. The approximation is confined to the routing
//! boundary (pair costs *between* cells are never materialized). The
//! degenerate `cells = 1` configuration bypasses the router entirely
//! and delegates every call verbatim to one flat controller —
//! bit-identical by construction, pinned by the `controller_invariants`
//! equivalence property tests.
//!
//! # Observer semantics
//!
//! With `cells = 1` the sink sees exactly the flat event stream. With
//! `cells > 1` per-event callbacks are translated to global ids (VM
//! ids, server indices offset by the cell's slot range, class indices
//! mapped through the cell's [`CellSubfleet::class_map`]) and
//! forwarded; [`MetricSink::on_period`] fires once per **cell** per
//! period (records are cell-local), and only the sharded session's own
//! [`MetricSink::on_summary`] fires — with the merged fleet-wide
//! report.
//!
//! # Example
//!
//! ```
//! use cavm_core::fleet::ServerFleet;
//! use cavm_power::LinearPowerModel;
//! use cavm_sim::cells::ShardedController;
//! use cavm_sim::{ControllerConfig, NullSink, Policy};
//! use cavm_core::dvfs::DvfsMode;
//! use cavm_trace::{Reference, TimeSeries};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ControllerConfig {
//!     server_fleet: ServerFleet::uniform(8, 8.0, LinearPowerModel::xeon_e5410())?,
//!     policy: Policy::Proposed(Default::default()),
//!     repack_trigger: Default::default(),
//!     qos_guard: None,
//!     adaptive_slack_max: None,
//!     overcommit: None,
//!     dvfs_mode: DvfsMode::Static,
//!     period_samples: 16,
//!     reference: Reference::Peak,
//!     dynamic_headroom: 0.1,
//!     default_demand: 1.0,
//!     sample_dt_s: 5.0,
//!     max_deferred: 64,
//! };
//! let mut sink = NullSink;
//! let mut dc = ShardedController::new(cfg, 2)?;
//! for id in 0..6 {
//!     let trace = TimeSeries::constant(5.0, 32, 1.0 + id as f64 * 0.2)?;
//!     dc.arrive(id, trace, None, &mut sink)?;
//! }
//! for _ in 0..16 {
//!     dc.tick(&mut sink)?;
//! }
//! assert_eq!(dc.live_vms(), 6);
//! dc.finish(&mut sink)?;
//! # Ok(())
//! # }
//! ```

use crate::controller::{
    ControllerConfig, DatacenterController, MetricSink, RepackEvent, ViolationEvent, VmEvent,
};
use crate::error::SimError;
use crate::report::{ClassBreakdown, PeriodRecord, SimReport};
use cavm_core::cells::{partition_fleet, CellSubfleet};
use cavm_power::EnergyMeter;
use cavm_trace::{MomentSketch, TimeSeries, PHASE_BUCKETS};

/// Where a global VM currently lives (or lived) in the shard layout.
#[derive(Debug, Clone)]
struct RouteEntry {
    /// The cell the VM was routed to.
    cell: usize,
    /// The VM's id inside that cell's flat controller.
    local: usize,
    /// The sketch's phase envelope, subtracted from the cell's
    /// aggregate at departure.
    profile: [f64; PHASE_BUCKETS],
    /// Reference demand charged against the cell's capacity.
    ref_demand: f64,
    /// `false` once departed (the entry stays — departed global ids
    /// must never re-arrive, matching the flat controller).
    live: bool,
}

/// Per-cell sink adapter: rewrites cell-local identifiers into the
/// global namespace before forwarding, and swallows the inner
/// controller's summary (the sharded session emits its own merged
/// one).
struct CellSink<'a> {
    outer: &'a mut dyn MetricSink,
    server_offset: usize,
    class_map: &'a [usize],
    global_of: &'a [usize],
}

impl CellSink<'_> {
    fn vm(&self, local: usize) -> usize {
        self.global_of.get(local).copied().unwrap_or(local)
    }
}

impl MetricSink for CellSink<'_> {
    fn on_period(&mut self, record: &PeriodRecord) {
        self.outer.on_period(record);
    }

    fn on_repack(&mut self, event: &RepackEvent) {
        self.outer.on_repack(event);
    }

    fn on_migration(&mut self, period: usize, vm: usize, from: usize, to: usize) {
        self.outer.on_migration(
            period,
            self.vm(vm),
            from + self.server_offset,
            to + self.server_offset,
        );
    }

    fn on_violation(&mut self, event: &ViolationEvent) {
        let mut event = *event;
        event.server += self.server_offset;
        event.class = self
            .class_map
            .get(event.class)
            .copied()
            .unwrap_or(event.class);
        self.outer.on_violation(&event);
    }

    fn on_class_energy(&mut self, period: usize, class: usize, name: &str, period_joules: f64) {
        let class = self.class_map.get(class).copied().unwrap_or(class);
        self.outer
            .on_class_energy(period, class, name, period_joules);
    }

    fn on_admit(&mut self, sample: usize, vm: usize, server: usize) {
        self.outer
            .on_admit(sample, self.vm(vm), server + self.server_offset);
    }

    fn on_server_fail(&mut self, sample: usize, server: usize, residents: usize) {
        self.outer
            .on_server_fail(sample, server + self.server_offset, residents);
    }

    fn on_server_recover(&mut self, sample: usize, server: usize) {
        self.outer
            .on_server_recover(sample, server + self.server_offset);
    }

    fn on_summary(&mut self, _report: &SimReport) {
        // The sharded session emits the merged summary itself.
    }
}

/// The sharded datacenter session: one flat [`DatacenterController`]
/// per placement cell plus an O(cells) sketch router in front. See the
/// [module docs](self).
///
/// Like the flat controller the whole session is `Clone`-able:
/// [`snapshot`](Self::snapshot)/[`fork`](Self::fork) copy **cell-wise**
/// (each cell's flat controller clones independently, plus the O(cells)
/// routing tables), so a fork of a 256-cell session costs the sum of
/// 256 small per-cell clones, never a fleet-wide dense matrix.
#[derive(Debug, Clone)]
pub struct ShardedController {
    inner: Vec<DatacenterController>,
    /// `class_maps[cell][local_class]` → global class index.
    class_maps: Vec<Vec<usize>>,
    /// `server_offsets[cell]` = first global server index of the cell
    /// (prefix sums of the sub-fleet slot counts).
    server_offsets: Vec<usize>,
    /// `global_of[cell][local_vm]` → global VM id.
    global_of: Vec<Vec<usize>>,
    /// Routing table by global VM id.
    route: Vec<Option<RouteEntry>>,
    /// Per-cell aggregate phase envelope of live residents.
    phase_load: Vec<[f64; PHASE_BUCKETS]>,
    /// Per-cell aggregate reference demand of live residents.
    ref_load: Vec<f64>,
    /// Per-cell total core capacity.
    capacity: Vec<f64>,
    /// Global union frequency axis (sorted GHz) for the merged report.
    union_ghz: Vec<f64>,
    total_slots: usize,
    period_samples: usize,
    policy_name: String,
    dynamic_dvfs: bool,
    base_classes: Vec<(String, f64, usize, Vec<f64>)>,
    clock: usize,
    finished: bool,
}

impl ShardedController {
    /// Opens a sharded session over `cells` placement cells. The
    /// fleet in `base` is the **global** fleet; it is partitioned
    /// class-by-class across the cells with [`partition_fleet`].
    ///
    /// `cells = 1` is the degenerate flat configuration: every call
    /// delegates verbatim to one [`DatacenterController`] over the
    /// whole fleet (bit-identical, including the sink event stream).
    ///
    /// # Errors
    ///
    /// Propagates [`DatacenterController::new`] and
    /// [`partition_fleet`] validation ([`SimError::InvalidParameter`]
    /// for zero cells or more cells than servers).
    pub fn new(base: ControllerConfig, cells: usize) -> crate::Result<Self> {
        let union_ghz = {
            let mut ghz: Vec<f64> = base
                .server_fleet
                .classes()
                .iter()
                .flat_map(|c| c.ladder().levels().iter().map(|f| f.as_ghz()))
                .collect();
            ghz.sort_by(|a, b| a.partial_cmp(b).expect("finite frequencies"));
            ghz.dedup();
            ghz
        };
        let base_classes: Vec<(String, f64, usize, Vec<f64>)> = base
            .server_fleet
            .classes()
            .iter()
            .map(|c| {
                (
                    c.name().to_string(),
                    c.cores(),
                    c.count(),
                    c.ladder().levels().iter().map(|f| f.as_ghz()).collect(),
                )
            })
            .collect();
        let policy_name = base.policy.name().to_string();
        let dynamic_dvfs = matches!(base.dvfs_mode, cavm_core::dvfs::DvfsMode::Dynamic { .. });
        let period_samples = base.period_samples;

        let (inner, class_maps, server_offsets, capacity) = if cells == 1 {
            // Degenerate flat path: one controller over the untouched
            // global fleet, no routing layer at all.
            let capacity = base.server_fleet.total_cores().unwrap_or(f64::INFINITY);
            let n_classes = base.server_fleet.len();
            let ctl = DatacenterController::new(base)?;
            (
                vec![ctl],
                vec![(0..n_classes).collect()],
                vec![0],
                vec![capacity],
            )
        } else {
            let parts = partition_fleet(&base.server_fleet, cells).map_err(SimError::Core)?;
            let mut inner = Vec::with_capacity(cells);
            let mut class_maps = Vec::with_capacity(cells);
            let mut server_offsets = Vec::with_capacity(cells);
            let mut capacity = Vec::with_capacity(cells);
            let mut offset = 0usize;
            for CellSubfleet { fleet, class_map } in parts {
                server_offsets.push(offset);
                offset += fleet
                    .total_slots()
                    .expect("partitioned sub-fleets are bounded");
                capacity.push(
                    fleet
                        .total_cores()
                        .expect("partitioned sub-fleets are bounded"),
                );
                let mut cfg = base.clone();
                cfg.server_fleet = fleet;
                inner.push(DatacenterController::new(cfg)?);
                class_maps.push(class_map);
            }
            (inner, class_maps, server_offsets, capacity)
        };
        let n_cells = inner.len();
        let total_slots = base_classes.iter().map(|(_, _, count, _)| *count).sum();
        Ok(Self {
            inner,
            class_maps,
            server_offsets,
            global_of: vec![Vec::new(); n_cells],
            route: Vec::new(),
            phase_load: vec![[0.0; PHASE_BUCKETS]; n_cells],
            ref_load: vec![0.0; n_cells],
            capacity,
            union_ghz,
            total_slots,
            period_samples,
            policy_name,
            dynamic_dvfs,
            base_classes,
            clock: 0,
            finished: false,
        })
    }

    /// Number of placement cells.
    pub fn cells(&self) -> usize {
        self.inner.len()
    }

    /// Global sample index of the next tick.
    pub fn clock(&self) -> usize {
        self.clock
    }

    /// Currently live VMs across every cell.
    pub fn live_vms(&self) -> usize {
        self.inner.iter().map(DatacenterController::live_vms).sum()
    }

    /// VMs held in the cells' deferred-admission queues.
    pub fn deferred_vms(&self) -> usize {
        self.inner
            .iter()
            .map(DatacenterController::deferred_vms)
            .sum()
    }

    /// The cell a live or departed global VM was routed to, or `None`
    /// for an id this session never admitted. In the degenerate
    /// `cells = 1` configuration the router is bypassed and every
    /// registered id reports cell 0.
    pub fn cell_of_vm(&self, id: usize) -> Option<usize> {
        if self.inner.len() == 1 {
            return (id < self.inner[0].predicted_vms().len()).then_some(0);
        }
        self.route.get(id).and_then(|r| r.as_ref()).map(|r| r.cell)
    }

    /// Live VM count of each cell, for balance inspection.
    pub fn cell_populations(&self) -> Vec<usize> {
        self.inner
            .iter()
            .map(DatacenterController::live_vms)
            .collect()
    }

    /// Applies one lifecycle event — the sharded analogue of
    /// [`DatacenterController::apply`].
    ///
    /// # Errors
    ///
    /// As [`DatacenterController::apply`]; routing adds no new error
    /// conditions.
    pub fn apply(&mut self, event: VmEvent, sink: &mut dyn MetricSink) -> crate::Result<()> {
        match event {
            VmEvent::Arrive {
                id,
                trace,
                lease_samples,
            } => self.arrive(id, trace, lease_samples, sink),
            VmEvent::Depart { id } => self.depart(id),
            VmEvent::ServerFail { server } => self.server_fail(server, sink),
            VmEvent::ServerRecover { server } => self.server_recover(server, sink),
            VmEvent::Tick => self.tick(sink),
        }
    }

    fn check_open(&self) -> crate::Result<()> {
        if self.finished {
            return Err(SimError::SessionFinished);
        }
        Ok(())
    }

    /// Routes an arriving VM to a cell and admits it there.
    ///
    /// The router sketches the trace ([`MomentSketch`], phase bucket =
    /// one placement period) and picks the cell minimizing the
    /// projected worst-phase aggregate — among cells whose reference
    /// load still fits their capacity, falling back to all cells when
    /// none fits (the receiving cell then defers or errors exactly as
    /// a flat controller would). Ties break toward the most free
    /// capacity, then the lowest cell index.
    ///
    /// # Errors
    ///
    /// See [`DatacenterController::arrive`].
    pub fn arrive(
        &mut self,
        id: usize,
        trace: TimeSeries,
        lease_samples: Option<usize>,
        sink: &mut dyn MetricSink,
    ) -> crate::Result<()> {
        self.check_open()?;
        if self.inner.len() == 1 {
            return self.inner[0].arrive(id, trace, lease_samples, sink);
        }
        if self.route.get(id).is_some_and(Option::is_some) {
            return Err(SimError::DuplicateVm { id });
        }
        let sketch = MomentSketch::from_series(&trace, self.clock, self.period_samples)
            .map_err(SimError::Trace)?;
        let reference = self.inner[0].config().reference;
        let ref_demand = sketch.reference(reference);
        let profile = sketch.phase_profile();
        let cell = self.route_to_cell(ref_demand, &profile);

        let local = self.global_of[cell].len();
        {
            let mut cell_sink = CellSink {
                outer: sink,
                server_offset: self.server_offsets[cell],
                class_map: &self.class_maps[cell],
                global_of: &self.global_of[cell],
            };
            self.inner[cell].arrive(local, trace, lease_samples, &mut cell_sink)?;
        }
        self.global_of[cell].push(id);
        if self.route.len() <= id {
            self.route.resize_with(id + 1, || None);
        }
        self.route[id] = Some(RouteEntry {
            cell,
            local,
            profile,
            ref_demand,
            live: true,
        });
        for (slot, p) in self.phase_load[cell].iter_mut().zip(profile) {
            *slot += p;
        }
        self.ref_load[cell] += ref_demand;
        Ok(())
    }

    /// The O(cells) routing decision. Score = projected worst-phase
    /// aggregate after adding the VM's envelope.
    ///
    /// Feasibility is deliberately *plain-capacity* even when the
    /// per-cell controllers run a deliberate-overcommit margin: the
    /// margin is an intra-cell, per-server bet priced by exact Eqn (2)
    /// pair costs, which the sketch router does not have. Inflating
    /// the phase-bucket feasibility by the margin as well would count
    /// the same headroom twice (router capacity × (1 + m), then server
    /// capacity × (1 + m) again inside the cell). Cells admit past
    /// their router budget on their own margin only through the
    /// infeasible-fallback path below, exactly as a full flat fleet
    /// would.
    fn route_to_cell(&self, ref_demand: f64, profile: &[f64; PHASE_BUCKETS]) -> usize {
        let score = |c: usize| -> f64 {
            self.phase_load[c]
                .iter()
                .zip(profile)
                .map(|(have, add)| have + add)
                .fold(0.0f64, f64::max)
        };
        let free = |c: usize| self.capacity[c] - self.ref_load[c];
        let feasible = |c: usize| self.ref_load[c] + ref_demand <= self.capacity[c];
        let pick = |candidates: &mut dyn Iterator<Item = usize>| -> Option<usize> {
            let mut best: Option<(usize, f64, f64)> = None;
            for c in candidates {
                let s = score(c);
                let f = free(c);
                let better = match best {
                    None => true,
                    Some((_, bs, bf)) => s < bs || (s == bs && f > bf),
                };
                if better {
                    best = Some((c, s, f));
                }
            }
            best.map(|(c, _, _)| c)
        };
        pick(&mut (0..self.inner.len()).filter(|&c| feasible(c)))
            .or_else(|| pick(&mut (0..self.inner.len())))
            .unwrap_or(0)
    }

    /// Ends a VM's lease in its cell.
    ///
    /// # Errors
    ///
    /// See [`DatacenterController::depart`].
    pub fn depart(&mut self, id: usize) -> crate::Result<()> {
        self.check_open()?;
        if self.inner.len() == 1 {
            return self.inner[0].depart(id);
        }
        let entry = self
            .route
            .get_mut(id)
            .and_then(Option::as_mut)
            .ok_or(SimError::UnknownVm { id })?;
        if !entry.live {
            return Err(SimError::VmAlreadyDeparted { id });
        }
        let (cell, local, profile, ref_demand) =
            (entry.cell, entry.local, entry.profile, entry.ref_demand);
        self.inner[cell].depart(local)?;
        let entry = self.route[id].as_mut().expect("checked above");
        entry.live = false;
        for (slot, p) in self.phase_load[cell].iter_mut().zip(profile) {
            *slot -= p;
        }
        self.ref_load[cell] -= ref_demand;
        Ok(())
    }

    /// Advances one monitoring sample in every cell.
    ///
    /// # Errors
    ///
    /// See [`DatacenterController::tick`].
    pub fn tick(&mut self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        self.check_open()?;
        if self.inner.len() == 1 {
            self.clock += 1;
            return self.inner[0].tick(sink);
        }
        for cell in 0..self.inner.len() {
            let mut cell_sink = CellSink {
                outer: sink,
                server_offset: self.server_offsets[cell],
                class_map: &self.class_maps[cell],
                global_of: &self.global_of[cell],
            };
            self.inner[cell].tick(&mut cell_sink)?;
        }
        self.clock += 1;
        Ok(())
    }

    /// Fails a server by its **global** index (cells occupy contiguous
    /// slot ranges in partition order).
    ///
    /// # Errors
    ///
    /// See [`DatacenterController::server_fail`];
    /// [`SimError::UnknownServer`] for an index outside the global
    /// fleet.
    pub fn server_fail(&mut self, server: usize, sink: &mut dyn MetricSink) -> crate::Result<()> {
        self.check_open()?;
        if self.inner.len() == 1 {
            return self.inner[0].server_fail(server, sink);
        }
        let (cell, local) = self.locate_server(server)?;
        let mut cell_sink = CellSink {
            outer: sink,
            server_offset: self.server_offsets[cell],
            class_map: &self.class_maps[cell],
            global_of: &self.global_of[cell],
        };
        self.inner[cell].server_fail(local, &mut cell_sink)
    }

    /// Recovers a failed server by its **global** index.
    ///
    /// # Errors
    ///
    /// See [`DatacenterController::server_recover`].
    pub fn server_recover(
        &mut self,
        server: usize,
        sink: &mut dyn MetricSink,
    ) -> crate::Result<()> {
        self.check_open()?;
        if self.inner.len() == 1 {
            return self.inner[0].server_recover(server, sink);
        }
        let (cell, local) = self.locate_server(server)?;
        let mut cell_sink = CellSink {
            outer: sink,
            server_offset: self.server_offsets[cell],
            class_map: &self.class_maps[cell],
            global_of: &self.global_of[cell],
        };
        self.inner[cell].server_recover(local, &mut cell_sink)
    }

    fn locate_server(&self, server: usize) -> crate::Result<(usize, usize)> {
        if server >= self.total_slots {
            return Err(SimError::UnknownServer {
                server,
                servers: self.total_slots,
            });
        }
        let cell = match self.server_offsets.binary_search(&server) {
            Ok(c) => c,
            Err(insert) => insert - 1,
        };
        Ok((cell, server - self.server_offsets[cell]))
    }

    /// Ends the session: finishes every cell (their summaries are
    /// swallowed) and emits one merged [`MetricSink::on_summary`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SessionFinished`] if already finished.
    pub fn finish(&mut self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        self.check_open()?;
        if self.inner.len() == 1 {
            self.finished = true;
            return self.inner[0].finish(sink);
        }
        for cell in 0..self.inner.len() {
            let mut cell_sink = CellSink {
                outer: sink,
                server_offset: self.server_offsets[cell],
                class_map: &self.class_maps[cell],
                global_of: &self.global_of[cell],
            };
            self.inner[cell].finish(&mut cell_sink)?;
        }
        self.finished = true;
        sink.on_summary(&self.report());
        Ok(())
    }

    /// The fleet-wide aggregate. With one cell this is exactly the
    /// flat controller's report; with several it merges the per-cell
    /// reports into the global namespace: per-period rows are summed
    /// across cells (violation ratios take the worst cell), class
    /// rows merge through each cell's class map, per-server frequency
    /// histograms land at the cell's global slot offset, and scalar
    /// counters add up. `peak_servers_used` and `deferred_peak` sum
    /// per-cell peaks, an upper bound on the true simultaneous global
    /// peak.
    pub fn report(&self) -> SimReport {
        if self.inner.len() == 1 {
            return self.inner[0].report();
        }
        let reports: Vec<SimReport> = self
            .inner
            .iter()
            .map(DatacenterController::report)
            .collect();

        // ---- periods: index-aligned merge (ticks are synchronized).
        let n_periods = reports.iter().map(|r| r.periods.len()).max().unwrap_or(0);
        let mut periods = Vec::with_capacity(n_periods);
        for p in 0..n_periods {
            let rows = reports.iter().filter_map(|r| r.periods.get(p));
            let mut merged = PeriodRecord {
                period: p,
                servers_used: 0,
                max_violation_ratio: 0.0,
                migrations: 0,
                pcp_clusters: None,
            };
            for row in rows {
                merged.servers_used += row.servers_used;
                merged.max_violation_ratio =
                    merged.max_violation_ratio.max(row.max_violation_ratio);
                merged.migrations += row.migrations;
                if let Some(k) = row.pcp_clusters {
                    merged.pcp_clusters = Some(merged.pcp_clusters.unwrap_or(0) + k);
                }
            }
            periods.push(merged);
        }
        let max_violation = periods
            .iter()
            .map(|p| p.max_violation_ratio)
            .fold(0.0, f64::max);
        let mean_violation = if periods.is_empty() {
            0.0
        } else {
            periods.iter().map(|p| p.max_violation_ratio).sum::<f64>() / periods.len() as f64
        };

        // ---- classes: merge through each cell's class map.
        let mut classes: Vec<ClassBreakdown> = self
            .base_classes
            .iter()
            .map(|(name, cores, count, levels)| ClassBreakdown {
                name: name.clone(),
                cores: *cores,
                servers_available: *count,
                peak_servers_used: 0,
                energy: EnergyMeter::new(),
                violation_instances: 0,
                migrations_in: 0,
                freq_levels_ghz: levels.clone(),
                freq_histogram: vec![0; levels.len()],
            })
            .collect();
        for (cell, report) in reports.iter().enumerate() {
            for (local, row) in report.classes.iter().enumerate() {
                let class = &mut classes[self.class_maps[cell][local]];
                class.peak_servers_used += row.peak_servers_used;
                class.energy.merge(&row.energy);
                class.violation_instances += row.violation_instances;
                class.migrations_in += row.migrations_in;
                for (slot, count) in class.freq_histogram.iter_mut().zip(&row.freq_histogram) {
                    *slot += count;
                }
            }
        }
        let mut energy = EnergyMeter::new();
        for class in &classes {
            energy.merge(&class.energy);
        }

        // ---- per-server histograms: remap each cell's union axis
        // onto the global one and land rows at the cell's offset.
        let mut freq_histogram = vec![vec![0u64; self.union_ghz.len()]; self.total_slots];
        for (cell, report) in reports.iter().enumerate() {
            let col_map: Vec<usize> = report
                .freq_levels_ghz
                .iter()
                .map(|g| {
                    self.union_ghz
                        .iter()
                        .position(|u| u == g)
                        .expect("cell ladders are subsets of the global union")
                })
                .collect();
            for (row_i, row) in report.freq_histogram.iter().enumerate() {
                let target = &mut freq_histogram[self.server_offsets[cell] + row_i];
                for (col, &count) in row.iter().enumerate() {
                    target[col_map[col]] += count;
                }
            }
        }

        SimReport {
            policy: self.policy_name.clone(),
            dynamic_dvfs: self.dynamic_dvfs,
            energy,
            max_violation_percent: max_violation * 100.0,
            mean_violation_percent: mean_violation * 100.0,
            violation_instances: reports.iter().map(|r| r.violation_instances).sum(),
            periods,
            classes,
            freq_histogram,
            freq_levels_ghz: self.union_ghz.clone(),
            online_admissions: reports.iter().map(|r| r.online_admissions).sum(),
            offcycle_repacks: reports.iter().map(|r| r.offcycle_repacks).sum(),
            // Inner controllers report 0 here (only a `Buffered`
            // adapter can drop, and it folds its counter in at
            // `on_summary`), but summing keeps the merge faithful if
            // a cell's report ever arrives with drops recorded.
            sink_dropped_events: reports.iter().map(|r| r.sink_dropped_events).sum(),
            server_failures: reports.iter().map(|r| r.server_failures).sum(),
            evacuations: reports.iter().map(|r| r.evacuations).sum(),
            deferred_peak: reports.iter().map(|r| r.deferred_peak).sum(),
        }
    }

    /// Read access to one cell's flat controller, for inspection.
    pub fn cell_controller(&self, cell: usize) -> Option<&DatacenterController> {
        self.inner.get(cell)
    }

    /// An independent copy of the whole sharded session, cell-wise.
    ///
    /// Alias of [`fork`](Self::fork); see
    /// [`DatacenterController::snapshot`] for the semantics.
    pub fn snapshot(&self) -> Self {
        self.clone()
    }

    /// Forks the sharded session: every cell's flat controller is
    /// cloned independently along with the O(cells) routing state.
    /// Events applied to the fork never touch the original and vice
    /// versa.
    pub fn fork(&self) -> Self {
        self.clone()
    }

    /// Runs a hypothetical off-cycle re-pack on a **fork of every
    /// cell** and returns the summed delta, without touching the live
    /// session. Cells re-pack independently (exactly as a real
    /// off-cycle trigger would fire per cell), so the delta is the sum
    /// of per-cell [`WhatIfDelta`](crate::controller::WhatIfDelta)s.
    ///
    /// # Errors
    ///
    /// Propagates any per-cell re-pack failure
    /// (e.g. [`SimError::InsufficientServers`]).
    pub fn what_if_repack(&self) -> crate::Result<crate::controller::WhatIfDelta> {
        let mut servers_before = 0;
        let mut servers_after = 0;
        let mut servers_freed = 0;
        let mut migrations = 0;
        let mut energy_estimate = 0.0;
        for cell in &self.inner {
            let delta = cell.what_if().repack()?;
            servers_before += delta.servers_before;
            servers_after += delta.servers_after;
            servers_freed += delta.servers_freed;
            migrations += delta.migrations;
            energy_estimate += delta.energy_estimate;
        }
        Ok(crate::controller::WhatIfDelta {
            servers_before,
            servers_after,
            servers_freed,
            migrations,
            energy_estimate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Policy;
    use crate::controller::NullSink;
    use cavm_core::dvfs::DvfsMode;
    use cavm_core::fleet::ServerFleet;
    use cavm_power::LinearPowerModel;
    use cavm_trace::{Reference, SimRng};

    fn config(servers: usize) -> ControllerConfig {
        ControllerConfig {
            server_fleet: ServerFleet::uniform(servers, 8.0, LinearPowerModel::xeon_e5410())
                .unwrap(),
            policy: Policy::Proposed(Default::default()),
            repack_trigger: Default::default(),
            qos_guard: None,
            adaptive_slack_max: None,
            overcommit: None,
            dvfs_mode: DvfsMode::Static,
            period_samples: 16,
            reference: Reference::Peak,
            dynamic_headroom: 0.1,
            default_demand: 1.0,
            sample_dt_s: 5.0,
            max_deferred: 64,
        }
    }

    fn diurnal(rng: &mut SimRng, len: usize, phase: f64) -> TimeSeries {
        let noise: Vec<f64> = (0..len).map(|_| rng.normal(0.0, 0.1)).collect();
        TimeSeries::from_fn(5.0, len, |i| {
            let base = 1.5 + (i as f64 / 24.0 + phase).sin();
            (base + noise[i]).max(0.05)
        })
        .unwrap()
    }

    #[test]
    fn single_cell_is_bit_identical_to_flat() {
        let mut rng = SimRng::new(11);
        let traces: Vec<TimeSeries> = (0..8).map(|i| diurnal(&mut rng, 64, i as f64)).collect();
        let mut flat = DatacenterController::new(config(8)).unwrap();
        let mut sharded = ShardedController::new(config(8), 1).unwrap();
        let mut sink = NullSink;
        for (id, t) in traces.iter().enumerate() {
            flat.arrive(id, t.clone(), Some(40), &mut sink).unwrap();
            sharded.arrive(id, t.clone(), Some(40), &mut sink).unwrap();
        }
        for k in 0..48 {
            if k == 40 {
                for id in 0..4 {
                    flat.depart(id).unwrap();
                    sharded.depart(id).unwrap();
                }
            }
            flat.tick(&mut sink).unwrap();
            sharded.tick(&mut sink).unwrap();
        }
        let a = flat.report();
        let b = sharded.report();
        assert_eq!(a, b);
        assert_eq!(
            a.energy.joules().to_bits(),
            b.energy.joules().to_bits(),
            "single-cell energy must be bit-identical"
        );
    }

    /// Pins the sharded report to the flat one **field by field**. The
    /// exhaustive destructuring (no `..`) is the point: adding a field
    /// to [`SimReport`] fails this test's compilation until the merge
    /// in [`ShardedController::report`] — and this list — handle it,
    /// which is exactly the audit that caught `sink_dropped_events`
    /// being silently zeroed in the merge.
    #[test]
    fn single_cell_report_pins_every_field() {
        let mut rng = SimRng::new(23);
        let traces: Vec<TimeSeries> = (0..8).map(|i| diurnal(&mut rng, 64, i as f64)).collect();
        let mut flat = DatacenterController::new(config(8)).unwrap();
        let mut sharded = ShardedController::new(config(8), 1).unwrap();
        let mut sink = NullSink;
        for (id, t) in traces.iter().enumerate() {
            flat.arrive(id, t.clone(), Some(40), &mut sink).unwrap();
            sharded.arrive(id, t.clone(), Some(40), &mut sink).unwrap();
        }
        for k in 0..48 {
            if k == 40 {
                flat.depart(0).unwrap();
                sharded.depart(0).unwrap();
            }
            flat.tick(&mut sink).unwrap();
            sharded.tick(&mut sink).unwrap();
        }
        let want = flat.report();
        let SimReport {
            policy,
            dynamic_dvfs,
            energy,
            max_violation_percent,
            mean_violation_percent,
            violation_instances,
            periods,
            classes,
            freq_histogram,
            freq_levels_ghz,
            online_admissions,
            offcycle_repacks,
            sink_dropped_events,
            server_failures,
            evacuations,
            deferred_peak,
        } = sharded.report();
        assert_eq!(policy, want.policy);
        assert_eq!(dynamic_dvfs, want.dynamic_dvfs);
        assert_eq!(energy, want.energy);
        assert_eq!(max_violation_percent, want.max_violation_percent);
        assert_eq!(mean_violation_percent, want.mean_violation_percent);
        assert_eq!(violation_instances, want.violation_instances);
        assert_eq!(periods, want.periods);
        assert_eq!(classes, want.classes);
        assert_eq!(freq_histogram, want.freq_histogram);
        assert_eq!(freq_levels_ghz, want.freq_levels_ghz);
        assert_eq!(online_admissions, want.online_admissions);
        assert_eq!(offcycle_repacks, want.offcycle_repacks);
        assert_eq!(sink_dropped_events, want.sink_dropped_events);
        assert_eq!(server_failures, want.server_failures);
        assert_eq!(evacuations, want.evacuations);
        assert_eq!(deferred_peak, want.deferred_peak);
    }

    #[test]
    fn multi_cell_routes_and_merges() {
        let mut rng = SimRng::new(7);
        let mut sharded = ShardedController::new(config(8), 2).unwrap();
        let mut sink = NullSink;
        for id in 0..10 {
            let t = diurnal(&mut rng, 64, id as f64 * 0.7);
            sharded.arrive(id, t, None, &mut sink).unwrap();
        }
        assert_eq!(sharded.live_vms(), 10);
        // Both cells should have residents — the router balances.
        let pops = sharded.cell_populations();
        assert_eq!(pops.iter().sum::<usize>(), 10);
        assert!(pops.iter().all(|&p| p > 0), "lopsided routing: {pops:?}");
        for _ in 0..32 {
            sharded.tick(&mut sink).unwrap();
        }
        sharded.depart(3).unwrap();
        assert!(matches!(
            sharded.depart(3),
            Err(SimError::VmAlreadyDeparted { id: 3 })
        ));
        assert!(matches!(
            sharded.arrive(
                3,
                TimeSeries::constant(5.0, 8, 1.0).unwrap(),
                None,
                &mut sink
            ),
            Err(SimError::DuplicateVm { id: 3 })
        ));
        let report = sharded.report();
        assert_eq!(report.periods.len(), 2);
        // Two cells of 4 servers: per-period servers_used is the sum.
        assert!(report.periods[0].servers_used <= 8);
        assert!(report.energy.joules() > 0.0);
        // The merged class row sees the whole fleet.
        assert_eq!(report.classes.len(), 1);
        assert_eq!(report.classes[0].servers_available, 8);
        assert_eq!(report.freq_histogram.len(), 8);
        sharded.finish(&mut sink).unwrap();
        assert!(matches!(
            sharded.finish(&mut sink),
            Err(SimError::SessionFinished)
        ));
    }

    #[test]
    fn global_server_indices_map_onto_cells() {
        let mut sharded = ShardedController::new(config(8), 2).unwrap();
        let mut sink = NullSink;
        for id in 0..6 {
            let t = TimeSeries::constant(5.0, 64, 1.0 + id as f64 * 0.3).unwrap();
            sharded.arrive(id, t, None, &mut sink).unwrap();
        }
        sharded.tick(&mut sink).unwrap();
        // Cell 1 starts at global server 4 (two equal 4-server cells).
        assert_eq!(sharded.locate_server(0).unwrap(), (0, 0));
        assert_eq!(sharded.locate_server(3).unwrap(), (0, 3));
        assert_eq!(sharded.locate_server(4).unwrap(), (1, 0));
        assert_eq!(sharded.locate_server(7).unwrap(), (1, 3));
        assert!(matches!(
            sharded.server_fail(8, &mut sink),
            Err(SimError::UnknownServer {
                server: 8,
                servers: 8
            })
        ));
        // Failing a provisioned global server reaches the right cell.
        let report_failures_before = sharded.report().server_failures;
        sharded.server_fail(0, &mut sink).unwrap();
        assert_eq!(sharded.report().server_failures, report_failures_before + 1);
        sharded.server_recover(0, &mut sink).unwrap();
    }

    #[test]
    fn router_prefers_anti_correlated_cells() {
        // Two cells; cell 0 already hosts VMs peaking in bucket 0.
        // A new VM peaking in the same bucket should go to cell 1.
        let cfg = config(8);
        let period = cfg.period_samples;
        let mut sharded = ShardedController::new(cfg, 2).unwrap();
        let mut sink = NullSink;
        let peak_early = |height: f64| {
            TimeSeries::from_fn(5.0, period * PHASE_BUCKETS, move |i| {
                if i < period {
                    height
                } else {
                    0.1
                }
            })
            .unwrap()
        };
        sharded.arrive(0, peak_early(3.0), None, &mut sink).unwrap();
        // Cell loads now differ; the next same-phase VM must avoid the
        // loaded cell.
        let first = sharded.cell_of_vm(0).unwrap();
        sharded.arrive(1, peak_early(3.0), None, &mut sink).unwrap();
        let second = sharded.cell_of_vm(1).unwrap();
        assert_ne!(first, second, "router stacked correlated peaks");
    }
}
