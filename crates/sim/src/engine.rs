//! The time-stepped replay engine.
//!
//! One run proceeds period by period (Fig 2 is invoked "at every
//! t_period"):
//!
//! 1. **UPDATE** — per-VM demands are *predicted* with the paper's
//!    last-value predictor from the previous period's observed reference
//!    utilization; the pairwise cost matrix carries the previous
//!    period's samples (streaming, O(1) per sample per pair).
//! 2. **ALLOCATE** — the configured policy places the VMs; the static
//!    frequency of every active server is chosen by Eqn (4) for the
//!    proposed policy and by the coincident-peaks worst case for the
//!    correlation-blind baselines.
//! 3. **Replay** — the period's 5-second samples are replayed: each
//!    active server accumulates its members' demands, violations are
//!    counted whenever the aggregate exceeds the frequency-scaled
//!    capacity, power is integrated, and (in dynamic mode) the governor
//!    re-plans from the recent measured peak every `interval_samples`.

use crate::config::{Policy, Scenario};
use crate::report::{PeriodRecord, SimReport};
use crate::SimError;
use cavm_core::alloc::{
    AllocationPolicy, BfdPolicy, FfdPolicy, PcpPolicy, Placement, ProposedPolicy, SuperVmPolicy,
    VmDescriptor,
};
use cavm_core::corr::CostMatrix;
use cavm_core::dvfs::{DvfsMode, FrequencyPlanner};
use cavm_core::predict::{LastValuePredictor, Predictor};
use cavm_core::servercost::server_cost_of;
use cavm_power::{EnergyMeter, PowerModel};
use cavm_trace::TimeSeries;

const VIOLATION_EPS: f64 = 1e-9;

impl Scenario {
    /// Runs the scenario to completion. Deterministic: identical
    /// scenarios produce identical reports.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InsufficientServers`] when a period's
    /// placement needs more servers than available, and propagates
    /// trace/power/core errors.
    pub fn run(&self) -> crate::Result<SimReport> {
        let n = self.fleet.len();
        let traces: Vec<&TimeSeries> = self.fleet.traces();
        let dt = traces[0].dt();
        let n_samples = traces[0].len();
        let periods = n_samples / self.period_samples;
        let capacity = self.cores_per_server as f64;
        let ladder = self.power_model.ladder().clone();
        let planner = FrequencyPlanner::new(ladder.clone());

        let mut peak_pred = LastValuePredictor::new(n);
        let mut offpeak_pred = LastValuePredictor::new(n);
        let mut prev_matrix: Option<CostMatrix> = None;
        let mut prev_assignment: Option<Vec<usize>> = None;

        let mut energy = EnergyMeter::new();
        let mut freq_histogram = vec![vec![0u64; ladder.len()]; self.server_count];
        let mut period_records = Vec::with_capacity(periods);
        let mut violation_instances = 0usize;
        let mut sample_buf = vec![0.0f64; n];

        for period in 0..periods {
            let start = period * self.period_samples;
            let end = start + self.period_samples;

            // ---- UPDATE: predicted descriptors + correlation matrix.
            let mut vms = Vec::with_capacity(n);
            for i in 0..n {
                let demand = peak_pred
                    .predict(i)
                    .map_err(SimError::Core)?
                    .unwrap_or(self.default_demand)
                    .max(0.0);
                let off_peak = offpeak_pred
                    .predict(i)
                    .map_err(SimError::Core)?
                    .unwrap_or(demand * 0.9)
                    .clamp(0.0, demand);
                vms.push(VmDescriptor::new(i, demand).with_off_peak(off_peak));
            }
            let matrix = match prev_matrix.take() {
                Some(m) => m,
                None => CostMatrix::new(n, self.reference).map_err(SimError::Core)?,
            };

            // ---- ALLOCATE.
            let (placement, pcp_clusters) =
                self.place_period(period, start, &vms, &matrix, capacity, &traces)?;
            if placement.server_count() > self.server_count {
                return Err(SimError::InsufficientServers {
                    needed: placement.server_count(),
                    available: self.server_count,
                });
            }

            // Migrations relative to the previous period.
            let mut assignment = vec![usize::MAX; n];
            for (s, members) in placement.servers().iter().enumerate() {
                for &v in members {
                    assignment[v] = s;
                }
            }
            let migrations = match &prev_assignment {
                Some(prev) => assignment.iter().zip(prev).filter(|(a, b)| a != b).count(),
                None => 0,
            };

            // Static frequency per active server.
            let active = placement.server_count();
            let mut freq_idx = Vec::with_capacity(active);
            for members in placement.servers() {
                let total: f64 = members.iter().map(|&v| vms[v].demand).sum();
                let f = if self.policy.correlation_aware_frequency() {
                    let cost = server_cost_of(members, &vms, &matrix).max(1.0);
                    planner
                        .static_level_correlation_aware(total, capacity, cost)
                        .map_err(SimError::Core)?
                } else {
                    planner
                        .static_level_worst_case(total, capacity)
                        .map_err(SimError::Core)?
                };
                freq_idx.push(ladder.index_of(f).expect("planner returns ladder levels"));
            }

            // ---- Replay the period.
            // UPDATE-phase matrix maintenance ("update M_cost ... for
            // all VM pairs", Fig 2 line 7) runs as one batch/parallel
            // window replay over the period's trace columns — the flat
            // SoA kernel walks the pair triangle pair-major instead of
            // re-touching the whole plane every tick.
            let mut matrix_next = CostMatrix::new(n, self.reference).map_err(SimError::Core)?;
            #[cfg(feature = "parallel")]
            matrix_next
                .par_push_columns(&traces, start, end)
                .map_err(SimError::Core)?;
            #[cfg(not(feature = "parallel"))]
            matrix_next
                .push_columns(&traces, start, end)
                .map_err(SimError::Core)?;
            // Correlation-aware governors trust the measured *aggregate*
            // peak; correlation-blind ones must assume per-VM peaks can
            // coincide and track the sum of individual window peaks
            // (Σ max ≥ max Σ, so blind governors never run slower).
            let mut window_max_agg = vec![0.0f64; active];
            let mut window_max_vm = vec![0.0f64; n];
            let mut server_violations = vec![0usize; active];
            for k in start..end {
                for (i, trace) in traces.iter().enumerate() {
                    sample_buf[i] = trace.values()[k];
                }
                let k_in_period = k - start;

                for (s, members) in placement.servers().iter().enumerate() {
                    let agg: f64 = members.iter().map(|&v| sample_buf[v]).sum();

                    if let DvfsMode::Dynamic { interval_samples } = self.dvfs_mode {
                        if k_in_period > 0 && k_in_period.is_multiple_of(interval_samples) {
                            let recent = if self.policy.correlation_aware_frequency() {
                                window_max_agg[s]
                            } else {
                                members.iter().map(|&v| window_max_vm[v]).sum()
                            };
                            let f = planner
                                .dynamic_level(recent, capacity, self.dynamic_headroom)
                                .map_err(SimError::Core)?;
                            freq_idx[s] =
                                ladder.index_of(f).expect("planner returns ladder levels");
                            window_max_agg[s] = 0.0;
                            for &v in members {
                                window_max_vm[v] = 0.0;
                            }
                        }
                        window_max_agg[s] = window_max_agg[s].max(agg);
                        for &v in members {
                            window_max_vm[v] = window_max_vm[v].max(sample_buf[v]);
                        }
                    }

                    let f = ladder.get(freq_idx[s]).expect("index within ladder");
                    let eff_capacity = capacity * f.ratio_to(ladder.max());
                    if agg > eff_capacity + VIOLATION_EPS {
                        server_violations[s] += 1;
                        violation_instances += 1;
                    }
                    let u = (agg / eff_capacity).clamp(0.0, 1.0);
                    let watts = self.power_model.power(u, f).map_err(SimError::Power)?;
                    energy.add(watts, dt);
                    freq_histogram[s][freq_idx[s]] += 1;
                }
            }

            // ---- Observe this period for the next UPDATE.
            for (i, trace) in traces.iter().enumerate() {
                let slice = &trace.values()[start..end];
                let peak = self.reference.of(slice).map_err(SimError::Trace)?;
                peak_pred.observe(i, peak).map_err(SimError::Core)?;
                let off = cavm_trace::percentile(slice, 90.0).map_err(SimError::Trace)?;
                offpeak_pred.observe(i, off).map_err(SimError::Core)?;
            }
            prev_matrix = Some(matrix_next);
            prev_assignment = Some(assignment);

            let max_ratio = server_violations
                .iter()
                .map(|&v| v as f64 / self.period_samples as f64)
                .fold(0.0, f64::max);
            period_records.push(PeriodRecord {
                period,
                servers_used: active,
                max_violation_ratio: max_ratio,
                migrations,
                pcp_clusters,
            });
        }

        let max_violation = period_records
            .iter()
            .map(|p| p.max_violation_ratio)
            .fold(0.0, f64::max);
        let mean_violation = if period_records.is_empty() {
            0.0
        } else {
            period_records
                .iter()
                .map(|p| p.max_violation_ratio)
                .sum::<f64>()
                / period_records.len() as f64
        };
        Ok(SimReport {
            policy: self.policy.name().to_string(),
            dynamic_dvfs: matches!(self.dvfs_mode, DvfsMode::Dynamic { .. }),
            energy,
            max_violation_percent: max_violation * 100.0,
            mean_violation_percent: mean_violation * 100.0,
            violation_instances,
            periods: period_records,
            freq_histogram,
            freq_levels_ghz: ladder.levels().iter().map(|f| f.as_ghz()).collect(),
        })
    }

    /// One period's placement (plus the PCP cluster count when
    /// applicable).
    fn place_period(
        &self,
        period: usize,
        start: usize,
        vms: &[VmDescriptor],
        matrix: &CostMatrix,
        capacity: f64,
        traces: &[&TimeSeries],
    ) -> crate::Result<(Placement, Option<usize>)> {
        match self.policy {
            Policy::Bfd => Ok((
                BfdPolicy
                    .place(vms, matrix, capacity)
                    .map_err(SimError::Core)?,
                None,
            )),
            Policy::Ffd => Ok((
                FfdPolicy
                    .place(vms, matrix, capacity)
                    .map_err(SimError::Core)?,
                None,
            )),
            Policy::Proposed(config) => {
                let policy = ProposedPolicy::new(config).map_err(SimError::Core)?;
                Ok((
                    policy
                        .place(vms, matrix, capacity)
                        .map_err(SimError::Core)?,
                    None,
                ))
            }
            Policy::SuperVm { min_pair_cost } => {
                let policy = SuperVmPolicy::new(min_pair_cost).map_err(SimError::Core)?;
                Ok((
                    policy
                        .place(vms, matrix, capacity)
                        .map_err(SimError::Core)?,
                    None,
                ))
            }
            Policy::Pcp {
                envelope_percentile,
                affinity_threshold,
            } => {
                if period == 0 {
                    // No history yet: a single degenerate cluster, i.e.
                    // BFD behaviour.
                    return Ok((
                        BfdPolicy
                            .place(vms, matrix, capacity)
                            .map_err(SimError::Core)?,
                        Some(1),
                    ));
                }
                let prev_start = start - self.period_samples;
                let slices: Vec<TimeSeries> = traces
                    .iter()
                    .map(|t| t.slice(prev_start, start))
                    .collect::<std::result::Result<_, _>>()
                    .map_err(SimError::Trace)?;
                let refs: Vec<&TimeSeries> = slices.iter().collect();
                let pcp = PcpPolicy::from_traces(&refs, envelope_percentile, affinity_threshold)
                    .map_err(SimError::Core)?;
                let clusters = pcp.cluster_count();
                Ok((
                    pcp.place(vms, matrix, capacity).map_err(SimError::Core)?,
                    Some(clusters),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioBuilder;
    use cavm_workload::datacenter::DatacenterTraceBuilder;

    fn fleet(vms: usize, hours: f64, seed: u64) -> cavm_workload::datacenter::VmFleet {
        DatacenterTraceBuilder::new(vms)
            .groups((vms / 3).max(1))
            .seed(seed)
            .duration_hours(hours)
            .build()
            .unwrap()
    }

    fn run(policy: Policy, mode: DvfsMode) -> SimReport {
        ScenarioBuilder::new(fleet(9, 4.0, 5))
            .servers(12)
            .policy(policy)
            .dvfs_mode(mode)
            .build()
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn run_is_deterministic() {
        let a = run(Policy::Bfd, DvfsMode::Static);
        let b = run(Policy::Bfd, DvfsMode::Static);
        assert_eq!(a, b);
    }

    #[test]
    fn all_policies_complete() {
        for policy in [
            Policy::Bfd,
            Policy::Ffd,
            Policy::Pcp {
                envelope_percentile: 90.0,
                affinity_threshold: 0.2,
            },
            Policy::Proposed(Default::default()),
        ] {
            let r = run(policy, DvfsMode::Static);
            assert_eq!(r.policy, policy.name());
            assert!(r.energy.joules() > 0.0, "{}", r.policy);
            assert_eq!(r.periods.len(), 4, "{}", r.policy);
            assert!((0.0..=100.0).contains(&r.max_violation_percent));
            assert!(r.mean_violation_percent <= r.max_violation_percent + 1e-9);
        }
    }

    #[test]
    fn dynamic_mode_runs_and_flags_report() {
        let r = run(
            Policy::Bfd,
            DvfsMode::Dynamic {
                interval_samples: 12,
            },
        );
        assert!(r.dynamic_dvfs);
        let s = run(Policy::Bfd, DvfsMode::Static);
        assert!(!s.dynamic_dvfs);
    }

    #[test]
    fn proposed_uses_no_more_energy_than_bfd_static() {
        // The headline Table II(a) direction.
        let bfd = run(Policy::Bfd, DvfsMode::Static);
        let prop = run(Policy::Proposed(Default::default()), DvfsMode::Static);
        let ratio = prop.energy.normalized_to(&bfd.energy).unwrap();
        assert!(ratio <= 1.02, "proposed/bfd energy ratio {ratio}");
    }

    #[test]
    fn frequency_histogram_accounts_every_active_sample() {
        let r = run(Policy::Bfd, DvfsMode::Static);
        let total: u64 = r.freq_histogram.iter().flatten().sum();
        let expected: u64 = r
            .periods
            .iter()
            .map(|p| (p.servers_used * 720) as u64)
            .sum();
        assert_eq!(total, expected);
        assert_eq!(r.freq_levels_ghz, vec![2.0, 2.3]);
    }

    #[test]
    fn pcp_reports_cluster_counts() {
        let r = run(
            Policy::Pcp {
                envelope_percentile: 90.0,
                affinity_threshold: 0.15,
            },
            DvfsMode::Static,
        );
        for p in &r.periods {
            assert!(p.pcp_clusters.is_some());
        }
        assert!(r.pcp_single_cluster_periods().is_some());
    }

    #[test]
    fn insufficient_servers_is_detected() {
        let err = ScenarioBuilder::new(fleet(12, 2.0, 3))
            .servers(1)
            .cores_per_server(2)
            .default_demand(2.0)
            .build()
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::InsufficientServers { .. }));
    }

    #[test]
    fn migrations_are_counted_between_periods() {
        let r = run(Policy::Proposed(Default::default()), DvfsMode::Static);
        assert_eq!(
            r.periods[0].migrations, 0,
            "first period has no predecessor"
        );
        // Subsequent periods may migrate; totals must be consistent.
        assert_eq!(
            r.total_migrations(),
            r.periods.iter().map(|p| p.migrations).sum::<usize>()
        );
    }

    #[test]
    fn first_period_uses_default_demand() {
        // With an absurd default demand every VM gets its own server in
        // period 0.
        let r = ScenarioBuilder::new(fleet(4, 2.0, 7))
            .servers(8)
            .default_demand(7.9)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.periods[0].servers_used, 4);
        // Later periods use observed (much smaller) demands.
        assert!(r.periods[1].servers_used < 4);
    }
}
