//! The batch replay driver — a thin convenience wrapper over the
//! online [`DatacenterController`].
//!
//! [`Scenario::run`] expresses the paper's closed-world replay in
//! lifecycle terms: every VM arrives at t = 0 with its full trace (or
//! per the scenario's [`Lifecycle`] when one is configured), the
//! controller ticks through the horizon, and a [`ReportSink`] collects
//! the terminal [`SimReport`]. The period-by-period semantics (Fig 2's
//! UPDATE/ALLOCATE at every t_period, per-class Eqn (4) frequency
//! planning, violation and energy accounting) live in
//! [`crate::controller`]; driven without a lifecycle this path is
//! bit-identical to the historical batch engine, which the
//! `fleet_regression` golden tests pin.
//!
//! [`Lifecycle`]: cavm_workload::lifecycle::Lifecycle

use crate::config::Scenario;
use crate::controller::{MetricSink, ReportSink, VmEvent};
use crate::report::SimReport;
use crate::SimError;
use cavm_workload::faults::{FaultEntry, FaultKind};
use cavm_workload::lifecycle::LifecycleEntry;
use std::collections::BTreeSet;

impl Scenario {
    /// Runs the scenario to completion. Deterministic: identical
    /// scenarios produce identical reports.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InsufficientServers`] when a placement needs
    /// more servers than the fleet provides, and propagates
    /// trace/power/core errors.
    pub fn run(&self) -> crate::Result<SimReport> {
        let mut sink = ReportSink::new();
        self.run_with_sink(&mut sink)?;
        sink.into_report()
            .ok_or(SimError::InvalidParameter("scenario produced no report"))
    }

    /// Runs the scenario while streaming every period, migration,
    /// violation, admission and the terminal report through `sink`.
    ///
    /// # Errors
    ///
    /// As [`Scenario::run`].
    pub fn run_with_sink(&self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        let mut controller = self.controller()?;
        let n_samples = self.fleet.vms()[0].fine.len();
        let periods = n_samples / self.period_samples;
        let total = periods * self.period_samples;

        // The event schedule: the configured lifecycle, or the
        // closed-world default (everything at t = 0, nothing departs).
        let entries: Vec<LifecycleEntry> = match &self.lifecycle {
            Some(lifecycle) => lifecycle.entries().to_vec(),
            None => (0..self.fleet.len())
                .map(|id| LifecycleEntry {
                    id,
                    arrival_sample: 0,
                    departure_sample: None,
                })
                .collect(),
        };
        let mut departures: Vec<(usize, usize)> = entries
            .iter()
            .filter_map(|e| e.departure_sample.map(|d| (d, e.id)))
            .filter(|&(d, _)| d < total)
            .collect();
        departures.sort_unstable();
        let fault_entries: &[FaultEntry] = self.faults.as_ref().map_or(&[], |p| p.entries());

        let mut next_arrival = 0usize;
        let mut next_departure = 0usize;
        let mut next_fault = 0usize;
        // Servers currently down, as the engine has applied them. The
        // plan may legitimately schedule overlapping transitions (a
        // correlated outage over an independent failure); this set
        // keeps the injection idempotent. Transitions aimed at servers
        // the controller has not provisioned yet are skipped — a rack
        // that never powered on cannot fail.
        let mut down: BTreeSet<usize> = BTreeSet::new();
        for k in 0..total {
            // Per-sample delivery order: recoveries first (capacity
            // returns before this sample's churn), then departures,
            // arrivals, failures, and finally the tick.
            while next_fault < fault_entries.len()
                && fault_entries[next_fault].sample == k
                && fault_entries[next_fault].kind == FaultKind::Recover
            {
                let server = fault_entries[next_fault].server;
                if down.remove(&server) {
                    controller.apply(VmEvent::ServerRecover { server }, sink)?;
                }
                next_fault += 1;
            }
            while next_departure < departures.len() && departures[next_departure].0 == k {
                controller.apply(
                    VmEvent::Depart {
                        id: departures[next_departure].1,
                    },
                    sink,
                )?;
                next_departure += 1;
            }
            while next_arrival < entries.len() && entries[next_arrival].arrival_sample == k {
                let entry = &entries[next_arrival];
                let end = entry.departure_sample.map_or(total, |d| d.min(total));
                let trace = self.fleet.vms()[entry.id]
                    .fine
                    .slice(entry.arrival_sample, end)
                    .map_err(SimError::Trace)?;
                // The schedule knows each lease up front; admission
                // uses it to keep soon-empty servers drainable.
                let lease_samples = entry
                    .departure_sample
                    .map(|d| d.saturating_sub(entry.arrival_sample));
                controller.apply(
                    VmEvent::Arrive {
                        id: entry.id,
                        trace,
                        lease_samples,
                    },
                    sink,
                )?;
                next_arrival += 1;
            }
            while next_fault < fault_entries.len() && fault_entries[next_fault].sample == k {
                let FaultEntry { kind, server, .. } = fault_entries[next_fault];
                match kind {
                    FaultKind::Fail => {
                        if !down.contains(&server) && server < controller.placement().server_count()
                        {
                            controller.apply(VmEvent::ServerFail { server }, sink)?;
                            down.insert(server);
                        }
                    }
                    // A same-sample Recover after a Fail (builder plans
                    // rank recoveries first, but hand-built plans may
                    // not) still applies.
                    FaultKind::Recover => {
                        if down.remove(&server) {
                            controller.apply(VmEvent::ServerRecover { server }, sink)?;
                        }
                    }
                }
                next_fault += 1;
            }
            controller.apply(VmEvent::Tick, sink)?;
        }
        controller.finish(sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Policy;
    use crate::ScenarioBuilder;
    use cavm_core::dvfs::DvfsMode;
    use cavm_core::fleet::{ServerClass, ServerFleet};
    use cavm_power::LinearPowerModel;
    use cavm_workload::datacenter::DatacenterTraceBuilder;

    fn fleet(vms: usize, hours: f64, seed: u64) -> cavm_workload::datacenter::VmFleet {
        DatacenterTraceBuilder::new(vms)
            .groups((vms / 3).max(1))
            .seed(seed)
            .duration_hours(hours)
            .build()
            .unwrap()
    }

    fn run(policy: Policy, mode: DvfsMode) -> SimReport {
        ScenarioBuilder::new(fleet(9, 4.0, 5))
            .servers(12)
            .policy(policy)
            .dvfs_mode(mode)
            .build()
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn run_is_deterministic() {
        let a = run(Policy::Bfd, DvfsMode::Static);
        let b = run(Policy::Bfd, DvfsMode::Static);
        assert_eq!(a, b);
    }

    #[test]
    fn all_policies_complete() {
        for policy in [
            Policy::Bfd,
            Policy::Ffd,
            Policy::Pcp {
                envelope_percentile: 90.0,
                affinity_threshold: 0.2,
            },
            Policy::Proposed(Default::default()),
        ] {
            let r = run(policy, DvfsMode::Static);
            assert_eq!(r.policy, policy.name());
            assert!(r.energy.joules() > 0.0, "{}", r.policy);
            assert_eq!(r.periods.len(), 4, "{}", r.policy);
            assert!((0.0..=100.0).contains(&r.max_violation_percent));
            assert!(r.mean_violation_percent <= r.max_violation_percent + 1e-9);
            assert_eq!(
                r.online_admissions, 0,
                "{}: batch runs never admit",
                r.policy
            );
        }
    }

    #[test]
    fn uniform_breakdown_matches_totals() {
        let r = run(Policy::Proposed(Default::default()), DvfsMode::Static);
        assert_eq!(r.classes.len(), 1);
        let c = &r.classes[0];
        assert_eq!(c.name, "uniform");
        assert_eq!(c.cores, 8.0);
        assert_eq!(c.servers_available, 12);
        assert_eq!(c.peak_servers_used, r.peak_servers_used());
        assert_eq!(c.energy, r.energy);
        assert_eq!(c.violation_instances, r.violation_instances);
        assert_eq!(c.migrations_in, r.total_migrations());
        // The one class's own histogram carries the whole union mass.
        assert_eq!(c.freq_levels_ghz, r.freq_levels_ghz);
        let class_mass: u64 = c.freq_histogram.iter().sum();
        let union_mass: u64 = r.freq_histogram.iter().flatten().sum();
        assert_eq!(class_mass, union_mass);
    }

    #[test]
    fn dynamic_mode_runs_and_flags_report() {
        let r = run(
            Policy::Bfd,
            DvfsMode::Dynamic {
                interval_samples: 12,
            },
        );
        assert!(r.dynamic_dvfs);
        let s = run(Policy::Bfd, DvfsMode::Static);
        assert!(!s.dynamic_dvfs);
    }

    #[test]
    fn proposed_uses_no_more_energy_than_bfd_static() {
        // The headline Table II(a) direction.
        let bfd = run(Policy::Bfd, DvfsMode::Static);
        let prop = run(Policy::Proposed(Default::default()), DvfsMode::Static);
        let ratio = prop.energy.normalized_to(&bfd.energy).unwrap();
        assert!(ratio <= 1.02, "proposed/bfd energy ratio {ratio}");
    }

    #[test]
    fn frequency_histogram_accounts_every_active_sample() {
        let r = run(Policy::Bfd, DvfsMode::Static);
        let total: u64 = r.freq_histogram.iter().flatten().sum();
        let expected: u64 = r
            .periods
            .iter()
            .map(|p| (p.servers_used * 720) as u64)
            .sum();
        assert_eq!(total, expected);
        assert_eq!(r.freq_levels_ghz, vec![2.0, 2.3]);
        // Per-class histograms carry the same mass, split by class.
        let class_total: u64 = r.classes.iter().flat_map(|c| c.freq_histogram.iter()).sum();
        assert_eq!(class_total, total);
    }

    #[test]
    fn pcp_reports_cluster_counts() {
        let r = run(
            Policy::Pcp {
                envelope_percentile: 90.0,
                affinity_threshold: 0.15,
            },
            DvfsMode::Static,
        );
        for p in &r.periods {
            assert!(p.pcp_clusters.is_some());
        }
        assert!(r.pcp_single_cluster_periods().is_some());
    }

    #[test]
    fn insufficient_servers_is_detected() {
        let err = ScenarioBuilder::new(fleet(12, 2.0, 3))
            .servers(1)
            .cores_per_server(2)
            .default_demand(2.0)
            .build()
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::InsufficientServers { .. }));
    }

    #[test]
    fn migrations_are_counted_between_periods() {
        let r = run(Policy::Proposed(Default::default()), DvfsMode::Static);
        assert_eq!(
            r.periods[0].migrations, 0,
            "first period has no predecessor"
        );
        // Subsequent periods may migrate; totals must be consistent.
        assert_eq!(
            r.total_migrations(),
            r.periods.iter().map(|p| p.migrations).sum::<usize>()
        );
    }

    #[test]
    fn first_period_uses_default_demand() {
        // With an absurd default demand every VM gets its own server in
        // period 0.
        let r = ScenarioBuilder::new(fleet(4, 2.0, 7))
            .servers(8)
            .default_demand(7.9)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.periods[0].servers_used, 4);
        // Later periods use observed (much smaller) demands.
        assert!(r.periods[1].servers_used < 4);
    }

    #[test]
    fn streamed_metrics_agree_with_the_report() {
        let scenario = ScenarioBuilder::new(fleet(9, 4.0, 5))
            .servers(12)
            .policy(Policy::Proposed(Default::default()))
            .build()
            .unwrap();
        let mut sink = ReportSink::new();
        scenario.run_with_sink(&mut sink).unwrap();
        let streamed_periods = sink.periods().to_vec();
        let streamed_migrations = sink.migrations();
        let streamed_violations = sink.violations();
        let report = sink.into_report().unwrap();
        assert_eq!(streamed_periods, report.periods);
        assert_eq!(streamed_migrations, report.total_migrations());
        assert_eq!(streamed_violations, report.violation_instances);
    }

    #[test]
    fn heterogeneous_scenario_reports_per_class_breakdowns() {
        let xeon = LinearPowerModel::xeon_e5410;
        let hetero = ServerFleet::new(vec![
            ServerClass::new("quad", 8, 4.0, xeon().scaled(0.6).unwrap()).unwrap(),
            ServerClass::new("octo", 6, 8.0, xeon()).unwrap(),
            ServerClass::new("hexadeca", 2, 16.0, xeon().scaled(1.9).unwrap()).unwrap(),
        ])
        .unwrap();
        for policy in [
            Policy::Bfd,
            Policy::Ffd,
            Policy::Pcp {
                envelope_percentile: 90.0,
                affinity_threshold: 0.2,
            },
            Policy::Proposed(Default::default()),
            Policy::SuperVm {
                min_pair_cost: 1.25,
            },
        ] {
            let r = ScenarioBuilder::new(fleet(9, 2.0, 5))
                .server_fleet(hetero.clone())
                .policy(policy)
                .build()
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(r.classes.len(), 3, "{}", r.policy);
            // The 16-core boxes fill first, so they must be active.
            assert!(r.classes[2].peak_servers_used >= 1, "{}", r.policy);
            // Per-class totals reassemble the run totals.
            let class_joules: f64 = r.classes.iter().map(|c| c.energy.joules()).sum();
            assert!(
                (class_joules - r.energy.joules()).abs() < 1e-6,
                "{}: class energies {} vs total {}",
                r.policy,
                class_joules,
                r.energy.joules()
            );
            let class_violations: usize = r.classes.iter().map(|c| c.violation_instances).sum();
            assert_eq!(class_violations, r.violation_instances, "{}", r.policy);
            let class_migrations: usize = r.classes.iter().map(|c| c.migrations_in).sum();
            assert_eq!(class_migrations, r.total_migrations(), "{}", r.policy);
            // The histogram axis is the union ladder (one per class
            // here, all sharing 2.0/2.3 GHz).
            assert_eq!(r.freq_levels_ghz, vec![2.0, 2.3], "{}", r.policy);
            // Per-class histogram masses reassemble the union mass.
            let union_mass: u64 = r.freq_histogram.iter().flatten().sum();
            let class_mass: u64 = r.classes.iter().flat_map(|c| c.freq_histogram.iter()).sum();
            assert_eq!(class_mass, union_mass, "{}", r.policy);
        }
    }
}
