//! The time-stepped replay engine.
//!
//! One run proceeds period by period (Fig 2 is invoked "at every
//! t_period"):
//!
//! 1. **UPDATE** — per-VM demands are *predicted* with the paper's
//!    last-value predictor from the previous period's observed reference
//!    utilization; the pairwise cost matrix carries the previous
//!    period's samples (streaming, O(1) per sample per pair).
//! 2. **ALLOCATE** — the configured policy places the VMs onto the
//!    scenario's [`ServerFleet`] (opening servers largest-class-first);
//!    the static frequency of every active server is chosen per its
//!    *class* — Eqn (4) on the class ladder/capacity for the proposed
//!    policy, the coincident-peaks worst case for the
//!    correlation-blind baselines.
//! 3. **Replay** — the period's 5-second samples are replayed: each
//!    active server accumulates its members' demands, violations are
//!    counted whenever the aggregate exceeds the server's
//!    frequency-scaled *class* capacity, power is integrated through
//!    the class's own model into per-class meters, and (in dynamic
//!    mode) the governor re-plans from the recent measured peak every
//!    `interval_samples`.
//!
//! [`ServerFleet`]: cavm_core::fleet::ServerFleet

use crate::config::{Policy, Scenario};
use crate::report::{ClassBreakdown, PeriodRecord, SimReport};
use crate::SimError;
use cavm_core::alloc::{
    AllocationPolicy, BfdPolicy, FfdPolicy, PcpPolicy, Placement, ProposedPolicy, SuperVmPolicy,
    VmDescriptor,
};
use cavm_core::corr::CostMatrix;
use cavm_core::dvfs::{DvfsMode, FleetFrequencyPlanner};
use cavm_core::predict::{LastValuePredictor, Predictor};
use cavm_core::servercost::server_cost_of;
use cavm_core::CoreError;
use cavm_power::{EnergyMeter, PowerModel};
use cavm_trace::TimeSeries;

const VIOLATION_EPS: f64 = 1e-9;

/// A fleet that cannot host the placement surfaces as the sim-level
/// "insufficient servers" error; everything else passes through.
fn map_core(e: CoreError) -> SimError {
    match e {
        CoreError::FleetExhausted { slots, unallocated } => SimError::InsufficientServers {
            // Each leftover VM needs at most one more server, so this
            // is an upper bound on the shortfall.
            needed: slots.saturating_add(unallocated),
            available: slots,
        },
        e => SimError::Core(e),
    }
}

impl Scenario {
    /// Runs the scenario to completion. Deterministic: identical
    /// scenarios produce identical reports.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InsufficientServers`] when a period's
    /// placement needs more servers than the fleet provides, and
    /// propagates trace/power/core errors.
    pub fn run(&self) -> crate::Result<SimReport> {
        let n = self.fleet.len();
        let traces: Vec<&TimeSeries> = self.fleet.traces();
        let dt = traces[0].dt();
        let n_samples = traces[0].len();
        let periods = n_samples / self.period_samples;
        let server_fleet = &self.server_fleet;
        let n_classes = server_fleet.len();
        let total_slots = server_fleet
            .total_slots()
            .expect("builder rejects unbounded sim fleets");
        let planner = FleetFrequencyPlanner::new(server_fleet);

        // The histogram's frequency axis is the sorted union of every
        // class ladder (a uniform fleet keeps its own ladder).
        // `union_level[class][class_level]` maps into it.
        let mut union_ghz: Vec<f64> = server_fleet
            .classes()
            .iter()
            .flat_map(|c| c.ladder().levels().iter().map(|f| f.as_ghz()))
            .collect();
        union_ghz.sort_by(|a, b| a.partial_cmp(b).expect("finite frequencies"));
        union_ghz.dedup();
        let union_level: Vec<Vec<usize>> = server_fleet
            .classes()
            .iter()
            .map(|c| {
                c.ladder()
                    .levels()
                    .iter()
                    .map(|f| {
                        union_ghz
                            .iter()
                            .position(|&g| g == f.as_ghz())
                            .expect("union contains every class level")
                    })
                    .collect()
            })
            .collect();

        let mut peak_pred = LastValuePredictor::new(n);
        let mut offpeak_pred = LastValuePredictor::new(n);
        let mut prev_matrix: Option<CostMatrix> = None;
        let mut prev_assignment: Option<Vec<Option<usize>>> = None;

        let mut class_energy = vec![EnergyMeter::new(); n_classes];
        let mut class_violations = vec![0usize; n_classes];
        let mut class_migrations = vec![0usize; n_classes];
        let mut class_peak_servers = vec![0usize; n_classes];
        let mut freq_histogram = vec![vec![0u64; union_ghz.len()]; total_slots];
        let mut period_records = Vec::with_capacity(periods);
        let mut violation_instances = 0usize;
        let mut sample_buf = vec![0.0f64; n];

        for period in 0..periods {
            let start = period * self.period_samples;
            let end = start + self.period_samples;

            // ---- UPDATE: predicted descriptors + correlation matrix.
            let mut vms = Vec::with_capacity(n);
            for i in 0..n {
                let demand = peak_pred
                    .predict(i)
                    .map_err(SimError::Core)?
                    .unwrap_or(self.default_demand)
                    .max(0.0);
                let off_peak = offpeak_pred
                    .predict(i)
                    .map_err(SimError::Core)?
                    .unwrap_or(demand * 0.9)
                    .clamp(0.0, demand);
                vms.push(VmDescriptor::new(i, demand).with_off_peak(off_peak));
            }
            let matrix = match prev_matrix.take() {
                Some(m) => m,
                None => CostMatrix::new(n, self.reference).map_err(SimError::Core)?,
            };

            // ---- ALLOCATE.
            let (placement, pcp_clusters) =
                self.place_period(period, start, &vms, &matrix, &traces)?;
            let classes_of = placement.classes().to_vec();
            let cores_of: Vec<f64> = classes_of
                .iter()
                .map(|&c| server_fleet.classes()[c].cores())
                .collect();

            // Migrations relative to the previous period, attributed to
            // the class of the *destination* server.
            let assignment = placement.assignment(n);
            let mut migrations = 0usize;
            if let Some(prev) = &prev_assignment {
                for (now, before) in assignment.iter().zip(prev) {
                    if now != before {
                        migrations += 1;
                        if let Some(s) = now {
                            class_migrations[classes_of[*s]] += 1;
                        }
                    }
                }
            }

            // Static frequency per active server, planned against its
            // own class ladder and capacity. Per-server demand totals
            // come from the placement's one-pass accessor.
            let active = placement.server_count();
            let server_demands = placement.server_demands(&vms);
            let mut freq_idx = Vec::with_capacity(active);
            for (s, members) in placement.servers().iter().enumerate() {
                let class = classes_of[s];
                let total = server_demands[s];
                let f = if self.policy.correlation_aware_frequency() {
                    let cost = server_cost_of(members, &vms, &matrix).max(1.0);
                    planner
                        .static_level_correlation_aware(class, total, cost)
                        .map_err(SimError::Core)?
                } else {
                    planner
                        .static_level_worst_case(class, total)
                        .map_err(SimError::Core)?
                };
                let ladder = server_fleet.classes()[class].ladder();
                freq_idx.push(ladder.index_of(f).expect("planner returns ladder levels"));
            }

            // ---- Replay the period.
            // UPDATE-phase matrix maintenance ("update M_cost ... for
            // all VM pairs", Fig 2 line 7) runs as one batch/parallel
            // window replay over the period's trace columns — the flat
            // SoA kernel walks the pair triangle pair-major instead of
            // re-touching the whole plane every tick.
            let mut matrix_next = CostMatrix::new(n, self.reference).map_err(SimError::Core)?;
            #[cfg(feature = "parallel")]
            matrix_next
                .par_push_columns(&traces, start, end)
                .map_err(SimError::Core)?;
            #[cfg(not(feature = "parallel"))]
            matrix_next
                .push_columns(&traces, start, end)
                .map_err(SimError::Core)?;
            // Correlation-aware governors trust the measured *aggregate*
            // peak; correlation-blind ones must assume per-VM peaks can
            // coincide and track the sum of individual window peaks
            // (Σ max ≥ max Σ, so blind governors never run slower).
            let mut window_max_agg = vec![0.0f64; active];
            let mut window_max_vm = vec![0.0f64; n];
            let mut server_violations = vec![0usize; active];
            for k in start..end {
                for (i, trace) in traces.iter().enumerate() {
                    sample_buf[i] = trace.values()[k];
                }
                let k_in_period = k - start;

                for (s, members) in placement.servers().iter().enumerate() {
                    let class = classes_of[s];
                    let capacity = cores_of[s];
                    let ladder = server_fleet.classes()[class].ladder();
                    let agg: f64 = members.iter().map(|&v| sample_buf[v]).sum();

                    if let DvfsMode::Dynamic { interval_samples } = self.dvfs_mode {
                        if k_in_period > 0 && k_in_period.is_multiple_of(interval_samples) {
                            let recent = if self.policy.correlation_aware_frequency() {
                                window_max_agg[s]
                            } else {
                                members.iter().map(|&v| window_max_vm[v]).sum()
                            };
                            let f = planner
                                .dynamic_level(class, recent, self.dynamic_headroom)
                                .map_err(SimError::Core)?;
                            freq_idx[s] =
                                ladder.index_of(f).expect("planner returns ladder levels");
                            window_max_agg[s] = 0.0;
                            for &v in members {
                                window_max_vm[v] = 0.0;
                            }
                        }
                        window_max_agg[s] = window_max_agg[s].max(agg);
                        for &v in members {
                            window_max_vm[v] = window_max_vm[v].max(sample_buf[v]);
                        }
                    }

                    let f = ladder.get(freq_idx[s]).expect("index within ladder");
                    let eff_capacity = capacity * f.ratio_to(ladder.max());
                    if agg > eff_capacity + VIOLATION_EPS {
                        server_violations[s] += 1;
                        violation_instances += 1;
                        class_violations[class] += 1;
                    }
                    let u = (agg / eff_capacity).clamp(0.0, 1.0);
                    let watts = server_fleet.classes()[class]
                        .power_model()
                        .power(u, f)
                        .map_err(SimError::Power)?;
                    class_energy[class].add(watts, dt);
                    freq_histogram[s][union_level[class][freq_idx[s]]] += 1;
                }
            }

            // ---- Observe this period for the next UPDATE.
            for (i, trace) in traces.iter().enumerate() {
                let slice = &trace.values()[start..end];
                let peak = self.reference.of(slice).map_err(SimError::Trace)?;
                peak_pred.observe(i, peak).map_err(SimError::Core)?;
                let off = cavm_trace::percentile(slice, 90.0).map_err(SimError::Trace)?;
                offpeak_pred.observe(i, off).map_err(SimError::Core)?;
            }
            prev_matrix = Some(matrix_next);
            prev_assignment = Some(assignment);

            for (class, peak) in class_peak_servers.iter_mut().enumerate() {
                let used = classes_of.iter().filter(|&&c| c == class).count();
                *peak = (*peak).max(used);
            }

            let max_ratio = server_violations
                .iter()
                .map(|&v| v as f64 / self.period_samples as f64)
                .fold(0.0, f64::max);
            period_records.push(PeriodRecord {
                period,
                servers_used: active,
                max_violation_ratio: max_ratio,
                migrations,
                pcp_clusters,
            });
        }

        let max_violation = period_records
            .iter()
            .map(|p| p.max_violation_ratio)
            .fold(0.0, f64::max);
        let mean_violation = if period_records.is_empty() {
            0.0
        } else {
            period_records
                .iter()
                .map(|p| p.max_violation_ratio)
                .sum::<f64>()
                / period_records.len() as f64
        };
        let mut energy = EnergyMeter::new();
        for meter in &class_energy {
            energy.merge(meter);
        }
        let classes: Vec<ClassBreakdown> = server_fleet
            .classes()
            .iter()
            .enumerate()
            .map(|(c, spec)| ClassBreakdown {
                name: spec.name().to_string(),
                cores: spec.cores(),
                servers_available: spec.count(),
                peak_servers_used: class_peak_servers[c],
                energy: class_energy[c],
                violation_instances: class_violations[c],
                migrations_in: class_migrations[c],
            })
            .collect();
        Ok(SimReport {
            policy: self.policy.name().to_string(),
            dynamic_dvfs: matches!(self.dvfs_mode, DvfsMode::Dynamic { .. }),
            energy,
            max_violation_percent: max_violation * 100.0,
            mean_violation_percent: mean_violation * 100.0,
            violation_instances,
            periods: period_records,
            classes,
            freq_histogram,
            freq_levels_ghz: union_ghz,
        })
    }

    /// One period's placement (plus the PCP cluster count when
    /// applicable).
    fn place_period(
        &self,
        period: usize,
        start: usize,
        vms: &[VmDescriptor],
        matrix: &CostMatrix,
        traces: &[&TimeSeries],
    ) -> crate::Result<(Placement, Option<usize>)> {
        let fleet = &self.server_fleet;
        match self.policy {
            Policy::Bfd => Ok((BfdPolicy.place(vms, matrix, fleet).map_err(map_core)?, None)),
            Policy::Ffd => Ok((FfdPolicy.place(vms, matrix, fleet).map_err(map_core)?, None)),
            Policy::Proposed(config) => {
                let policy = ProposedPolicy::new(config).map_err(SimError::Core)?;
                Ok((policy.place(vms, matrix, fleet).map_err(map_core)?, None))
            }
            Policy::SuperVm { min_pair_cost } => {
                let policy = SuperVmPolicy::new(min_pair_cost).map_err(SimError::Core)?;
                Ok((policy.place(vms, matrix, fleet).map_err(map_core)?, None))
            }
            Policy::Pcp {
                envelope_percentile,
                affinity_threshold,
            } => {
                if period == 0 {
                    // No history yet: a single degenerate cluster, i.e.
                    // BFD behaviour.
                    return Ok((
                        BfdPolicy.place(vms, matrix, fleet).map_err(map_core)?,
                        Some(1),
                    ));
                }
                let prev_start = start - self.period_samples;
                let slices: Vec<TimeSeries> = traces
                    .iter()
                    .map(|t| t.slice(prev_start, start))
                    .collect::<std::result::Result<_, _>>()
                    .map_err(SimError::Trace)?;
                let refs: Vec<&TimeSeries> = slices.iter().collect();
                let pcp = PcpPolicy::from_traces(&refs, envelope_percentile, affinity_threshold)
                    .map_err(SimError::Core)?;
                let clusters = pcp.cluster_count();
                Ok((
                    pcp.place(vms, matrix, fleet).map_err(map_core)?,
                    Some(clusters),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioBuilder;
    use cavm_core::fleet::{ServerClass, ServerFleet};
    use cavm_power::LinearPowerModel;
    use cavm_workload::datacenter::DatacenterTraceBuilder;

    fn fleet(vms: usize, hours: f64, seed: u64) -> cavm_workload::datacenter::VmFleet {
        DatacenterTraceBuilder::new(vms)
            .groups((vms / 3).max(1))
            .seed(seed)
            .duration_hours(hours)
            .build()
            .unwrap()
    }

    fn run(policy: Policy, mode: DvfsMode) -> SimReport {
        ScenarioBuilder::new(fleet(9, 4.0, 5))
            .servers(12)
            .policy(policy)
            .dvfs_mode(mode)
            .build()
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn run_is_deterministic() {
        let a = run(Policy::Bfd, DvfsMode::Static);
        let b = run(Policy::Bfd, DvfsMode::Static);
        assert_eq!(a, b);
    }

    #[test]
    fn all_policies_complete() {
        for policy in [
            Policy::Bfd,
            Policy::Ffd,
            Policy::Pcp {
                envelope_percentile: 90.0,
                affinity_threshold: 0.2,
            },
            Policy::Proposed(Default::default()),
        ] {
            let r = run(policy, DvfsMode::Static);
            assert_eq!(r.policy, policy.name());
            assert!(r.energy.joules() > 0.0, "{}", r.policy);
            assert_eq!(r.periods.len(), 4, "{}", r.policy);
            assert!((0.0..=100.0).contains(&r.max_violation_percent));
            assert!(r.mean_violation_percent <= r.max_violation_percent + 1e-9);
        }
    }

    #[test]
    fn uniform_breakdown_matches_totals() {
        let r = run(Policy::Proposed(Default::default()), DvfsMode::Static);
        assert_eq!(r.classes.len(), 1);
        let c = &r.classes[0];
        assert_eq!(c.name, "uniform");
        assert_eq!(c.cores, 8.0);
        assert_eq!(c.servers_available, 12);
        assert_eq!(c.peak_servers_used, r.peak_servers_used());
        assert_eq!(c.energy, r.energy);
        assert_eq!(c.violation_instances, r.violation_instances);
        assert_eq!(c.migrations_in, r.total_migrations());
    }

    #[test]
    fn dynamic_mode_runs_and_flags_report() {
        let r = run(
            Policy::Bfd,
            DvfsMode::Dynamic {
                interval_samples: 12,
            },
        );
        assert!(r.dynamic_dvfs);
        let s = run(Policy::Bfd, DvfsMode::Static);
        assert!(!s.dynamic_dvfs);
    }

    #[test]
    fn proposed_uses_no_more_energy_than_bfd_static() {
        // The headline Table II(a) direction.
        let bfd = run(Policy::Bfd, DvfsMode::Static);
        let prop = run(Policy::Proposed(Default::default()), DvfsMode::Static);
        let ratio = prop.energy.normalized_to(&bfd.energy).unwrap();
        assert!(ratio <= 1.02, "proposed/bfd energy ratio {ratio}");
    }

    #[test]
    fn frequency_histogram_accounts_every_active_sample() {
        let r = run(Policy::Bfd, DvfsMode::Static);
        let total: u64 = r.freq_histogram.iter().flatten().sum();
        let expected: u64 = r
            .periods
            .iter()
            .map(|p| (p.servers_used * 720) as u64)
            .sum();
        assert_eq!(total, expected);
        assert_eq!(r.freq_levels_ghz, vec![2.0, 2.3]);
    }

    #[test]
    fn pcp_reports_cluster_counts() {
        let r = run(
            Policy::Pcp {
                envelope_percentile: 90.0,
                affinity_threshold: 0.15,
            },
            DvfsMode::Static,
        );
        for p in &r.periods {
            assert!(p.pcp_clusters.is_some());
        }
        assert!(r.pcp_single_cluster_periods().is_some());
    }

    #[test]
    fn insufficient_servers_is_detected() {
        let err = ScenarioBuilder::new(fleet(12, 2.0, 3))
            .servers(1)
            .cores_per_server(2)
            .default_demand(2.0)
            .build()
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::InsufficientServers { .. }));
    }

    #[test]
    fn migrations_are_counted_between_periods() {
        let r = run(Policy::Proposed(Default::default()), DvfsMode::Static);
        assert_eq!(
            r.periods[0].migrations, 0,
            "first period has no predecessor"
        );
        // Subsequent periods may migrate; totals must be consistent.
        assert_eq!(
            r.total_migrations(),
            r.periods.iter().map(|p| p.migrations).sum::<usize>()
        );
    }

    #[test]
    fn first_period_uses_default_demand() {
        // With an absurd default demand every VM gets its own server in
        // period 0.
        let r = ScenarioBuilder::new(fleet(4, 2.0, 7))
            .servers(8)
            .default_demand(7.9)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.periods[0].servers_used, 4);
        // Later periods use observed (much smaller) demands.
        assert!(r.periods[1].servers_used < 4);
    }

    #[test]
    fn heterogeneous_scenario_reports_per_class_breakdowns() {
        let xeon = LinearPowerModel::xeon_e5410;
        let hetero = ServerFleet::new(vec![
            ServerClass::new("quad", 8, 4.0, xeon().scaled(0.6).unwrap()).unwrap(),
            ServerClass::new("octo", 6, 8.0, xeon()).unwrap(),
            ServerClass::new("hexadeca", 2, 16.0, xeon().scaled(1.9).unwrap()).unwrap(),
        ])
        .unwrap();
        for policy in [
            Policy::Bfd,
            Policy::Ffd,
            Policy::Pcp {
                envelope_percentile: 90.0,
                affinity_threshold: 0.2,
            },
            Policy::Proposed(Default::default()),
            Policy::SuperVm {
                min_pair_cost: 1.25,
            },
        ] {
            let r = ScenarioBuilder::new(fleet(9, 2.0, 5))
                .server_fleet(hetero.clone())
                .policy(policy)
                .build()
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(r.classes.len(), 3, "{}", r.policy);
            // The 16-core boxes fill first, so they must be active.
            assert!(r.classes[2].peak_servers_used >= 1, "{}", r.policy);
            // Per-class totals reassemble the run totals.
            let class_joules: f64 = r.classes.iter().map(|c| c.energy.joules()).sum();
            assert!(
                (class_joules - r.energy.joules()).abs() < 1e-6,
                "{}: class energies {} vs total {}",
                r.policy,
                class_joules,
                r.energy.joules()
            );
            let class_violations: usize = r.classes.iter().map(|c| c.violation_instances).sum();
            assert_eq!(class_violations, r.violation_instances, "{}", r.policy);
            let class_migrations: usize = r.classes.iter().map(|c| c.migrations_in).sum();
            assert_eq!(class_migrations, r.total_migrations(), "{}", r.policy);
            // The histogram axis is the union ladder (one per class
            // here, all sharing 2.0/2.3 GHz).
            assert_eq!(r.freq_levels_ghz, vec![2.0, 2.3], "{}", r.policy);
        }
    }
}
