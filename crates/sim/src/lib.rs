//! Trace-driven datacenter simulator (paper Setup-2).
//!
//! Replays per-VM utilization traces against a fleet of DVFS-capable
//! servers, re-running VM placement every `t_period` (the paper uses
//! 1 hour) with *predicted* demands, and accounting power and capacity
//! violations exactly as Table II does:
//!
//! * **Placement** — any [`Policy`]: BFD, FFD, PCP (re-clustered each
//!   period from the previous period's envelopes), or the paper's
//!   correlation-aware heuristic.
//! * **Frequency** — static per period (Eqn 4 for the proposed policy,
//!   the worst-case level for correlation-blind baselines) or dynamic
//!   re-evaluation every k samples from the measured recent peak
//!   (Table II(b)).
//! * **Violations** — a sample is over-utilized when a server's
//!   aggregate demand exceeds its frequency-scaled capacity; the report
//!   carries the paper's metric, the maximum per-period ratio of
//!   over-utilized instances.
//! * **Power** — a [`PowerModel`] integrated over every active server's
//!   utilization; inactive servers are off. Table II's "normalized
//!   power" is `report.energy.normalized_to(&baseline.energy)`.
//!
//! [`PowerModel`]: cavm_power::PowerModel
//!
//! # Example
//!
//! ```
//! use cavm_sim::{Policy, ScenarioBuilder};
//! use cavm_workload::datacenter::DatacenterTraceBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fleet = DatacenterTraceBuilder::new(10)
//!     .groups(3)
//!     .seed(1)
//!     .duration_hours(4.0)
//!     .build()?;
//! let report = ScenarioBuilder::new(fleet)
//!     .servers(10)
//!     .policy(Policy::Proposed(Default::default()))
//!     .build()?
//!     .run()?;
//! assert!(report.energy.joules() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod engine;
mod error;
pub mod report;

pub use config::{Policy, Scenario, ScenarioBuilder};
pub use error::SimError;
pub use report::{PeriodRecord, SimReport};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
