//! Trace-driven datacenter simulator (paper Setup-2).
//!
//! Replays per-VM utilization traces against a [`ServerFleet`] of
//! DVFS-capable servers — the paper's uniform rack or a heterogeneous
//! mix of classes ([`ScenarioBuilder::server_fleet`]) — re-running VM
//! placement every `t_period` (the paper uses 1 hour) with *predicted*
//! demands, and accounting power and capacity violations exactly as
//! Table II does:
//!
//! * **Placement** — any [`Policy`]: BFD, FFD, PCP (re-clustered each
//!   period from the previous period's envelopes), SuperVM, or the
//!   paper's correlation-aware heuristic; all place onto the fleet,
//!   opening servers largest-class-first.
//! * **Frequency** — static per period (Eqn 4 for the proposed policy,
//!   the worst-case level for correlation-blind baselines) or dynamic
//!   re-evaluation every k samples from the measured recent peak
//!   (Table II(b)); always on the hosting server's own class ladder
//!   and capacity.
//! * **Violations** — a sample is over-utilized when a server's
//!   aggregate demand exceeds its frequency-scaled class capacity; the
//!   report carries the paper's metric, the maximum per-period ratio
//!   of over-utilized instances.
//! * **Power** — each class's [`PowerModel`] integrated over its active
//!   servers' utilization; inactive servers are off. Table II's
//!   "normalized power" is
//!   `report.energy.normalized_to(&baseline.energy)`, and
//!   [`SimReport::classes`] breaks energy/violations/migrations down
//!   per class.
//!
//! [`PowerModel`]: cavm_power::PowerModel
//! [`ServerFleet`]: cavm_core::fleet::ServerFleet
//!
//! # Example
//!
//! ```
//! use cavm_sim::{Policy, ScenarioBuilder};
//! use cavm_workload::datacenter::DatacenterTraceBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fleet = DatacenterTraceBuilder::new(10)
//!     .groups(3)
//!     .seed(1)
//!     .duration_hours(4.0)
//!     .build()?;
//! let report = ScenarioBuilder::new(fleet)
//!     .servers(10)
//!     .policy(Policy::Proposed(Default::default()))
//!     .build()?
//!     .run()?;
//! assert!(report.energy.joules() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod engine;
mod error;
pub mod report;

pub use config::{Policy, Scenario, ScenarioBuilder};
pub use error::SimError;
pub use report::{ClassBreakdown, PeriodRecord, SimReport};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
