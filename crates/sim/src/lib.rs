//! Online datacenter allocation controller and trace-driven simulator
//! (paper Setup-2).
//!
//! The crate's centre is the **event-driven controller**,
//! [`DatacenterController`]: a long-running allocation session over a
//! [`ServerFleet`] — the paper's uniform rack or a heterogeneous mix
//! of classes ([`ScenarioBuilder::server_fleet`]) — driven by
//! [`VmEvent`]s (`Arrive` / `Depart` / `Tick`). Placement re-runs
//! every `t_period` (the paper uses 1 hour) with *predicted* demands —
//! or adaptively: a [`RepackTrigger`] with a fragmentation slack fires
//! **off-cycle re-packs** when departures leave the fleet fragmented
//! (live Eqn 3 bound ≥ `slack` below the active server count), a
//! [`QosGuard`] composes a violation-triggered re-pack (plus a
//! boundary capacity check) onto any schedule so drifting predictions
//! cannot overcommit kept servers indefinitely, and a
//! [`SlackController`] adapts the slack between bounds from each
//! re-pack's realized servers-freed-per-migration gain. VMs
//! arriving **mid-period** are admitted through the incremental
//! single-VM placement ([`AllocationPolicy::place_one`]) without a
//! re-pack, biased by their remaining *lease* away from servers about
//! to drain, and progress streams through a [`MetricSink`]
//! (`on_period`, `on_repack`, `on_migration`, `on_violation`,
//! `on_class_energy`, …) instead of only a terminal report — wrap an
//! expensive sink in [`sink::Buffered`] to batch delivery behind a
//! bounded queue that can never stall the replay loop, or in
//! [`sink::Threaded`] to consume those batches on a dedicated worker
//! thread with identical semantics.
//!
//! Above the single session sits the **service layer**: the controller
//! is cheaply `Clone`-able, so [`DatacenterController::fork`] and the
//! [`WhatIf`] API answer "what if I re-packed now?" against a copy of
//! live state without perturbing it, and [`service::SessionHost`]
//! hosts many independent sessions at once, replaying an interleaved
//! event schedule on a worker pool with bit-identical results at any
//! pool size.
//! Accounting matches Table II exactly:
//!
//! * **Placement** — any [`Policy`]: BFD, FFD, PCP (re-clustered each
//!   period from the previous period's envelopes), SuperVM, or the
//!   paper's correlation-aware heuristic; all place onto the fleet,
//!   opening servers largest-class-first.
//! * **Frequency** — static per period (Eqn 4 for the proposed policy,
//!   the worst-case level for correlation-blind baselines) or dynamic
//!   re-evaluation every k samples from the measured recent peak
//!   (Table II(b)); always on the hosting server's own class ladder
//!   and capacity.
//! * **Violations** — a sample is over-utilized when a server's
//!   aggregate demand exceeds its frequency-scaled class capacity; the
//!   report carries the paper's metric, the maximum per-period ratio
//!   of over-utilized instances.
//! * **Power** — each class's [`PowerModel`] integrated over its active
//!   servers' utilization; inactive servers are off. Table II's
//!   "normalized power" is
//!   `report.energy.normalized_to(&baseline.energy)`, and
//!   [`SimReport::classes`] breaks energy/violations/migrations (and a
//!   per-class Fig 6 histogram) down per class.
//!
//! The paper's closed-world **batch replay is a convenience wrapper**:
//! [`Scenario::run`] drives the controller with every VM arriving at
//! t = 0 (or per an explicit [`ScenarioBuilder::lifecycle`] schedule —
//! Poisson arrivals, bounded leases, diurnal churn) and a
//! [`ReportSink`] collects the terminal [`SimReport`]. Without a
//! lifecycle this path is bit-identical to the historical batch
//! engine, pinned by the `fleet_regression` golden tests and the
//! batch≡online equivalence property tests.
//!
//! [`AllocationPolicy::place_one`]: cavm_core::alloc::AllocationPolicy::place_one
//! [`PowerModel`]: cavm_power::PowerModel
//! [`ServerFleet`]: cavm_core::fleet::ServerFleet
//!
//! # Example: batch replay
//!
//! ```
//! use cavm_sim::{Policy, ScenarioBuilder};
//! use cavm_workload::datacenter::DatacenterTraceBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fleet = DatacenterTraceBuilder::new(10)
//!     .groups(3)
//!     .seed(1)
//!     .duration_hours(4.0)
//!     .build()?;
//! let report = ScenarioBuilder::new(fleet)
//!     .servers(10)
//!     .policy(Policy::Proposed(Default::default()))
//!     .build()?
//!     .run()?;
//! assert!(report.energy.joules() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! # Example: online churn
//!
//! ```
//! use cavm_sim::{Policy, ReportSink, ScenarioBuilder};
//! use cavm_workload::datacenter::DatacenterTraceBuilder;
//! use cavm_workload::lifecycle::{ArrivalProcess, LifecycleBuilder, LifetimeModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fleet = DatacenterTraceBuilder::new(8)
//!     .groups(2)
//!     .seed(3)
//!     .duration_hours(4.0)
//!     .build()?;
//! let horizon = 4 * 720;
//! let lifecycle = LifecycleBuilder::new(8, horizon)
//!     .seed(3)
//!     .arrivals(ArrivalProcess::Poisson { mean_gap_samples: 120.0 })
//!     .lifetimes(LifetimeModel::Exponential { mean_samples: 1440.0 })
//!     .build()?;
//! let mut sink = ReportSink::new();
//! ScenarioBuilder::new(fleet)
//!     .servers(10)
//!     .lifecycle(lifecycle)
//!     .build()?
//!     .run_with_sink(&mut sink)?;
//! let report = sink.into_report().expect("summary fired");
//! assert!(report.energy.joules() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod config;
pub mod controller;
mod engine;
mod error;
pub mod report;
pub mod service;
pub mod sink;

pub use cells::ShardedController;
pub use config::{Policy, Scenario, ScenarioBuilder};
pub use controller::{
    ControllerConfig, DatacenterController, MetricSink, NullSink, OvercommitConfig,
    OvercommitController, QosGuard, RepackEvent, RepackReason, RepackTrigger, ReportSink,
    SlackController, ViolationEvent, VmEvent, WhatIf, WhatIfDelta,
};
pub use error::SimError;
pub use report::{ClassBreakdown, PeriodRecord, SimReport};
pub use service::{MergedReport, ServiceReport, SessionEvent, SessionHost};
pub use sink::{Buffered, SinkEvent, Threaded};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
