//! The online datacenter controller — an event-driven VM lifecycle
//! session.
//!
//! Where [`Scenario::run`] replays a *closed* world (every VM exists
//! for the whole horizon), [`DatacenterController`] is the open-system
//! API underneath it: a stateful session driven by [`VmEvent`]s —
//! `Arrive`, `Depart`, `Tick` — holding a live
//! [`Placement`], per-server incremental
//! [`ServerCostAggregate`]s and per-class energy meters, and streaming
//! progress through a [`MetricSink`] instead of only a terminal report.
//!
//! Semantics per event:
//!
//! * **`Tick`** advances one monitoring sample. The first tick of each
//!   placement period runs the batch UPDATE/ALLOCATE pass (predict →
//!   cost matrix → full policy re-pack → per-server Eqn (4) frequency),
//!   exactly as the paper's Fig 2 prescribes "at every t_period"; every
//!   tick then replays one sample (violations, energy integration,
//!   dynamic DVFS re-planning, Fig 6 histograms). The tick that
//!   completes a period observes it for the next UPDATE and rebuilds
//!   the pairwise matrix from the period's window.
//! * **`Arrive`** registers a VM whose trace starts at the current
//!   sample, together with its remaining lease when known. Mid-period
//!   arrivals are admitted **incrementally** through
//!   [`AllocationPolicy::place_one`] — an O(open servers ×
//!   |members|) scan over the live cost aggregates, *not* a full
//!   re-pack — with a lease-aware bias away from servers whose members
//!   all depart before the arrival would (soon-empty servers stay
//!   drainable); the hosting server's frequency is re-planned.
//!   Arrivals between periods simply join the next batch pass.
//! * **`Depart`** evicts the VM; the vacated server keeps its slot (and
//!   stays admissible for future arrivals), its aggregate is rebuilt
//!   and its frequency re-planned. Fully-emptied servers power off
//!   (they are skipped by the replay) until re-used or compacted by the
//!   next re-pack. Under a [`RepackTrigger`] with a fragmentation
//!   slack, an eviction also *arms* the trigger: the next tick
//!   compares the live Eqn (3) bound
//!   ([`ServerFleet::estimate_server_count`]) against the active
//!   server count and fires an **off-cycle re-pack** when the bound
//!   has dropped at least `slack` servers below it — the adaptive
//!   consolidation the fixed period clock cannot express.
//!
//! Driven with every VM arriving at t = 0 and no departures (and the
//! default [`RepackTrigger::Periodic`]), the controller is
//! **bit-identical** to the historical batch engine — the
//! `fleet_regression` golden tests and the batch≡online equivalence
//! property tests pin this.
//!
//! [`ServerFleet::estimate_server_count`]: cavm_core::fleet::ServerFleet::estimate_server_count
//!
//! [`Scenario::run`]: crate::config::Scenario::run
//! [`AllocationPolicy::place_one`]: cavm_core::alloc::AllocationPolicy::place_one

use crate::config::Policy;
use crate::report::{ClassBreakdown, PeriodRecord, SimReport};
use crate::SimError;
use cavm_core::alloc::{
    AllocationPolicy, BfdPolicy, FfdPolicy, OpenServer, PcpPolicy, Placement, ProposedPolicy,
    SuperVmPolicy, VmDescriptor,
};
use cavm_core::corr::CostMatrix;
use cavm_core::dvfs::{DvfsMode, FleetFrequencyPlanner};
use cavm_core::fleet::{ServerFleet, ServerHealth};
use cavm_core::servercost::{server_cost_of, ServerCostAggregate};
use cavm_core::CoreError;
use cavm_power::{EnergyMeter, PowerModel};
use cavm_trace::{Reference, TimeSeries};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

pub(crate) const VIOLATION_EPS: f64 = 1e-9;

/// A fleet that cannot host the placement surfaces as the sim-level
/// "insufficient servers" error; everything else passes through.
pub(crate) fn map_core(e: CoreError) -> SimError {
    match e {
        CoreError::FleetExhausted { slots, unallocated } => SimError::InsufficientServers {
            // Each leftover VM needs at most one more server, so this
            // is an upper bound on the shortfall.
            needed: slots.saturating_add(unallocated),
            available: slots,
        },
        e => SimError::Core(e),
    }
}

/// When the controller re-packs the live placement.
///
/// The paper's Fig 2 re-packs strictly on the period clock; under
/// heavy departure churn that leaves fragmented, half-empty servers
/// burning idle watts until the next boundary. The fragmentation
/// variants watch the live Eqn (3) lower bound
/// ([`ServerFleet::estimate_server_count`] of the packed predicted
/// demand) and fire an *off-cycle* re-pack as soon as it drops at
/// least `slack` servers below
/// [`Placement::active_server_count`] — checked at the first tick
/// after a departure evicts a placed VM (between membership changes
/// the predicate cannot change, so nothing else is ever checked).
///
/// ```
/// use cavm_sim::RepackTrigger;
///
/// let trigger = RepackTrigger::Hybrid { slack: 2 };
/// // 5 active servers, but the live demand would fit into 3.
/// assert!(trigger.fires(3, 5));
/// assert!(!trigger.fires(4, 5));
/// assert!(!RepackTrigger::Periodic.fires(0, 5));
/// ```
///
/// [`ServerFleet::estimate_server_count`]: cavm_core::fleet::ServerFleet::estimate_server_count
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepackTrigger {
    /// Re-pack at every period boundary only — the paper's schedule
    /// and the default; bit-identical to the pre-trigger controller.
    #[default]
    Periodic,
    /// Re-pack *only* when fragmentation warrants it: period
    /// boundaries refresh predictions, the cost matrix and the
    /// frequency plans but keep the standing placement (VMs that
    /// arrived between periods are admitted incrementally), and a full
    /// ALLOCATE pass runs only when the predicate fires. The session's
    /// first placement of a live VM set is still a batch pass.
    Fragmentation {
        /// Minimum gap (in servers) between the active count and the
        /// Eqn (3) bound before a re-pack fires; must be ≥ 1.
        slack: u32,
    },
    /// Both schedules: periodic re-packs *plus* fragmentation-fired
    /// off-cycle ones — never re-packs less than [`Periodic`] does.
    ///
    /// [`Periodic`]: RepackTrigger::Periodic
    Hybrid {
        /// Minimum gap (in servers) between the active count and the
        /// Eqn (3) bound before an off-cycle re-pack fires; must be
        /// ≥ 1.
        slack: u32,
    },
}

impl RepackTrigger {
    /// Whether period boundaries run the full ALLOCATE re-pack
    /// (`Periodic` and `Hybrid`).
    pub fn periodic_repacks(&self) -> bool {
        matches!(self, Self::Periodic | Self::Hybrid { .. })
    }

    /// The fragmentation slack, or `None` when off-cycle re-packs are
    /// disabled.
    pub fn slack(&self) -> Option<u32> {
        match *self {
            Self::Periodic => None,
            Self::Fragmentation { slack } | Self::Hybrid { slack } => Some(slack),
        }
    }

    /// The fragmentation predicate: `true` when the Eqn (3) bound
    /// `estimate` sits at least `slack` servers below the `active`
    /// server count (always `false` for [`RepackTrigger::Periodic`]).
    pub fn fires(&self, estimate: usize, active: usize) -> bool {
        match self.slack() {
            None => false,
            Some(slack) => active.saturating_sub(estimate) >= slack as usize,
        }
    }

    /// Stable display name for reports and experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Periodic => "periodic",
            Self::Fragmentation { .. } => "fragmentation",
            Self::Hybrid { .. } => "hybrid",
        }
    }
}

/// The QoS dimension of the re-pack schedule, composable with any
/// [`RepackTrigger`] via [`ControllerConfig::qos_guard`] /
/// `ScenarioBuilder::qos_guard`.
///
/// A pure [`RepackTrigger::Fragmentation`] schedule keeps placements
/// across period boundaries, so drifting predictions can leave kept
/// servers overcommitted for hours — the SLA side of the paper's
/// Eqn (2)/(3) energy/QoS tension. The guard watches the *observed*
/// worst per-server violation ratio of the running period and, once a
/// violation pushes it past `violation_ratio`, fires an off-cycle
/// re-pack ([`RepackReason::QosGuard`]) of exactly the breaching
/// servers: their members' predictions are refreshed from the
/// period's samples so far and their largest members trimmed onto
/// other servers until the refreshed load fits. At placement-keeping
/// period boundaries it additionally force-repacks servers that
/// breached the threshold over the completed period *and* remain
/// overcommitted under the refreshed predictions
/// ([`RepackReason::Overcommit`]). Sub-threshold overcommit is
/// deliberately left standing in both checks — summed per-VM peaks
/// overstating the coincident aggregate is the correlation gap the
/// paper's Eqn (1) packing exploits, and it is where the
/// placement-keeping schedule's energy win lives.
///
/// ```
/// use cavm_sim::QosGuard;
///
/// let guard = QosGuard {
///     violation_ratio: 0.05,
/// };
/// // 37 over-capacity samples in a 720-sample period is past 5%.
/// assert!(guard.exceeded(37, 720));
/// assert!(!guard.exceeded(36, 720));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosGuard {
    /// Worst per-server violation ratio (over-capacity samples /
    /// period samples) above which the guard fires; must lie in
    /// (0, 1].
    pub violation_ratio: f64,
}

impl QosGuard {
    /// The guard predicate: whether `violations` over-capacity samples
    /// out of `period_samples` exceed the configured ratio.
    pub fn exceeded(&self, violations: usize, period_samples: usize) -> bool {
        period_samples > 0 && violations as f64 / period_samples as f64 > self.violation_ratio
    }
}

/// Closed-loop tuning of the fragmentation slack.
///
/// A static `slack` trades energy against migration churn blindly: the
/// hybrid schedule of the adaptive experiment pays ~500 migrations for
/// its energy win. `SlackController` instead walks the slack between
/// bounds from what the trigger *actually realizes*:
///
/// * **Raise on expensive re-packs** — a fired re-pack reports the
///   servers it freed (the energy delta — every freed server stops
///   burning idle watts) against the migrations it paid. Freeing fewer
///   than one server per 1/[`SlackController::RAISE_BELOW`] migrations
///   raises the slack, making re-packs rarer; freeing at least one per
///   1/[`SlackController::LOWER_AT`] migrations lowers it again.
/// * **Decay on persistent misses** — an armed check that finds real
///   fragmentation (a gap at or above the configured floor) but below
///   the raised slack is a *missed consolidation*.
///   [`SlackController::MISS_STREAK`] consecutive misses walk the
///   slack back down one step. Without this decay the slack would
///   ratchet: once raised, re-packs stop firing, so nothing would
///   ever feed back that consolidation has become cheap again (e.g.
///   the nearly-drained end of a departure-heavy day, where each
///   re-pack frees a server for a handful of migrations).
///
/// The in-effect value streams on every [`RepackEvent::slack_after`].
///
/// ```
/// use cavm_sim::SlackController;
///
/// let mut ctl = SlackController::new(1, 3);
/// assert_eq!(ctl.current(), 1);
/// // 1 server freed for 8 migrations: too little per migration.
/// ctl.observe(1, 8);
/// assert_eq!(ctl.current(), 2);
/// // Two armed checks in a row find a 1-server gap the raised slack
/// // ignores: consolidation opportunities are going begging.
/// ctl.observe_miss(1);
/// ctl.observe_miss(1);
/// assert_eq!(ctl.current(), 1);
/// // 2 servers freed for 3 migrations: cheap — but never below the
/// // configured floor.
/// ctl.observe(2, 3);
/// assert_eq!(ctl.current(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlackController {
    min: u32,
    max: u32,
    current: u32,
    misses: u32,
}

impl SlackController {
    /// Below this servers-freed-per-migration gain the slack is raised.
    pub const RAISE_BELOW: f64 = 0.25;
    /// At or above this servers-freed-per-migration gain the slack is
    /// lowered again.
    pub const LOWER_AT: f64 = 0.5;
    /// Consecutive armed-but-sub-slack fragmentation observations
    /// before the slack decays one step.
    pub const MISS_STREAK: u32 = 2;

    /// A controller starting (and bounded below) at `initial`, bounded
    /// above by `max` (clamped up to `initial` if smaller). Equal
    /// bounds reproduce the static-slack behaviour exactly.
    pub fn new(initial: u32, max: u32) -> Self {
        Self {
            min: initial,
            max: max.max(initial),
            current: initial,
            misses: 0,
        }
    }

    /// The slack currently in effect.
    pub fn current(&self) -> u32 {
        self.current
    }

    /// The `(min, max)` bounds the slack walks between.
    pub fn bounds(&self) -> (u32, u32) {
        (self.min, self.max)
    }

    /// Whether the bounds actually leave room to adapt.
    pub fn is_adaptive(&self) -> bool {
        self.min != self.max
    }

    /// Feeds back one fired re-pack's realized outcome; a re-pack with
    /// no migrations carries no cost signal and leaves the slack —
    /// *and* an in-progress [`SlackController::MISS_STREAK`] — fully
    /// unchanged: only a priced observation resets the decay streak.
    pub fn observe(&mut self, servers_freed: usize, migrations: usize) {
        if migrations == 0 {
            return;
        }
        self.misses = 0;
        let gain = servers_freed as f64 / migrations as f64;
        if gain < Self::RAISE_BELOW {
            self.current = (self.current + 1).min(self.max);
        } else if gain >= Self::LOWER_AT {
            self.current = self.current.saturating_sub(1).max(self.min);
        }
    }

    /// Feeds back an armed check that did *not* fire because the
    /// observed `gap` (active servers minus the Eqn (3) bound) sat
    /// below the raised slack. Gaps at or above the configured floor
    /// count toward the decay streak; smaller gaps mean the fleet
    /// really is compact and reset it.
    pub fn observe_miss(&mut self, gap: usize) {
        if self.current > self.min && gap >= self.min as usize {
            self.misses += 1;
            if self.misses >= Self::MISS_STREAK {
                self.misses = 0;
                self.current -= 1;
            }
        } else {
            self.misses = 0;
        }
    }
}

/// Deliberate correlation-gap overcommit, threaded through
/// [`ControllerConfig::overcommit`] /
/// `ScenarioBuilder::overcommit`.
///
/// With a margin in effect, incremental admission and the batch re-pack
/// both accept servers whose *predicted per-VM sum* runs up to
/// `capacity × (1 + margin)` — but only when the Eqn (2) pairwise cost
/// says the candidate's peaks anti-align with the residents, i.e. the
/// Eqn (1) coincident-aggregate estimate (`predicted sum / cost`) still
/// lands within plain capacity
/// ([`OpenServer::admits`](cavm_core::alloc::OpenServer::admits)).
/// The configured [`QosGuard`] stays armed as the reactive backstop,
/// and an [`OvercommitController`] walks the live margin per fleet
/// class from the observed per-period violation ratios. Degraded mode
/// (failed servers or a non-empty deferred queue) suspends the margin
/// outright.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OvercommitConfig {
    /// Starting (and post-breach re-growable) margin as a fraction of
    /// capacity; must lie in `[0, max_margin]`.
    pub margin: f64,
    /// Hard ceiling the adaptive margin never exceeds; must lie in
    /// `(0, 1]`.
    pub max_margin: f64,
}

/// Closed-loop tuning of the deliberate-overcommit margin — the same
/// walk/decay machinery as [`SlackController`], driven by the observed
/// per-period violation ratio instead of migration cost.
///
/// Each completed period feeds
/// [`OvercommitController::observe_period`] the class's worst
/// per-server violation ratio against the guard threshold:
///
/// * **Shrink on breach** — a period whose worst ratio exceeded the
///   guard's threshold means the correlation-gap bet failed; the
///   margin steps down [`OvercommitController::STEP`] immediately
///   (never below zero — the guard's own trim handles the standing
///   placement).
/// * **Grow on sustained headroom** —
///   [`OvercommitController::RAISE_STREAK`] consecutive periods whose
///   worst ratio stayed at or below *half* the guard threshold grow
///   the margin one step, up to the configured ceiling. A ratio
///   between the two bands holds the margin (and resets the streak):
///   QoS is acceptable but not comfortable.
///
/// ```
/// use cavm_sim::OvercommitController;
///
/// let mut ctl = OvercommitController::new(0.10, 0.25);
/// assert_eq!(ctl.current(), 0.10);
/// // A breached period shrinks the margin immediately.
/// ctl.observe_period(0.08, 0.05);
/// assert!(ctl.current() < 0.10);
/// // Two comfortable periods in a row grow it back one step.
/// ctl.observe_period(0.0, 0.05);
/// ctl.observe_period(0.01, 0.05);
/// assert_eq!(ctl.current(), 0.10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OvercommitController {
    max: f64,
    current: f64,
    hits: u32,
}

impl OvercommitController {
    /// Margin step per adaptation, as a fraction of capacity.
    pub const STEP: f64 = 0.05;
    /// Consecutive comfortable periods (worst ratio ≤ half the guard
    /// threshold) before the margin grows one step.
    pub const RAISE_STREAK: u32 = 2;

    /// A controller starting at `initial`, ceilinged at `max` (clamped
    /// up to `initial` if smaller).
    pub fn new(initial: f64, max: f64) -> Self {
        Self {
            max: max.max(initial),
            current: initial,
            hits: 0,
        }
    }

    /// The margin currently in effect.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The ceiling the margin grows toward.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Feeds back one completed period: the class's worst per-server
    /// violation ratio against the guard's threshold.
    pub fn observe_period(&mut self, worst_ratio: f64, guard_ratio: f64) {
        if worst_ratio > guard_ratio {
            self.hits = 0;
            self.current = (self.current - Self::STEP).max(0.0);
        } else if worst_ratio <= guard_ratio * 0.5 {
            self.hits += 1;
            if self.hits >= Self::RAISE_STREAK {
                self.hits = 0;
                self.current = (self.current + Self::STEP).min(self.max);
            }
        } else {
            self.hits = 0;
        }
    }
}

/// Why a re-pack ran, carried by [`RepackEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepackReason {
    /// The period clock (Fig 2's every-`t_period` ALLOCATE pass). The
    /// session's first placement of a live VM set fires with this
    /// reason under every trigger.
    Periodic,
    /// The fragmentation predicate fired off-cycle: the Eqn (3) bound
    /// `estimate` had dropped at least `slack` below the `active`
    /// server count.
    Fragmentation {
        /// Eqn (3) lower bound at the firing instant.
        estimate: usize,
        /// Active (non-empty) servers at the firing instant.
        active: usize,
    },
    /// The [`QosGuard`] fired off-cycle: some server had accumulated
    /// `violations` over-capacity samples this period, pushing the
    /// worst per-server violation ratio past the guard's threshold.
    /// The breaching servers were surgically re-packed — predictions
    /// refreshed from the period's observed samples, largest members
    /// trimmed onto other servers until the refreshed load fits.
    QosGuard {
        /// Worst per-server over-capacity sample count at the firing
        /// instant (divide by the period length for the ratio).
        violations: usize,
    },
    /// A placement-keeping period boundary's capacity check (active
    /// when a [`QosGuard`] is configured) evicted and re-admitted the
    /// members of `servers` servers whose refreshed predicted Eqn (2)
    /// aggregate exceeded their capacity.
    Overcommit {
        /// Servers whose predicted aggregate exceeded capacity.
        servers: usize,
    },
    /// Server `server` failed ([`VmEvent::ServerFail`]) and its
    /// residents were emergency-evacuated: each re-admitted through
    /// the active policy's single-VM rule with every failed server
    /// excluded. `migrations` counts the residents that landed on an
    /// outliving server; the rest entered the deferred-admission
    /// queue. Unlike every other reason this is not a consolidation
    /// move and does not count toward
    /// [`SimReport::offcycle_repacks`](crate::SimReport::offcycle_repacks).
    Evacuation {
        /// The failed server the residents fled.
        server: usize,
    },
    /// A hypothetical re-pack run by a [`WhatIf`] probe on a **fork**
    /// of the live session. Never emitted by a live controller: the
    /// event only ever reaches the probe's internal capture sink (or a
    /// sink the caller drives the fork with directly), and the live
    /// session's state, counters and stream are untouched.
    WhatIf,
}

/// One full re-pack of the live placement, as streamed to
/// [`MetricSink::on_repack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepackEvent {
    /// Global sample index at which the re-pack ran.
    pub sample: usize,
    /// Placement period the re-pack belongs to.
    pub period: usize,
    /// What fired it.
    pub reason: RepackReason,
    /// Active servers before the re-pack.
    pub servers_before: usize,
    /// Active servers after the re-pack.
    pub servers_after: usize,
    /// VMs whose server changed in the re-pack.
    pub migrations: usize,
    /// Fragmentation slack in effect *after* this re-pack — the
    /// [`SlackController`] may have just adapted it from the re-pack's
    /// realized outcome. `None` when the schedule has no fragmentation
    /// dimension ([`RepackTrigger::Periodic`]).
    pub slack_after: Option<u32>,
}

/// One step of a VM's lifecycle, applied with
/// [`DatacenterController::apply`].
#[derive(Debug, Clone, PartialEq)]
pub enum VmEvent {
    /// A VM enters the datacenter. `trace` is its demand signal from
    /// this instant on (sample 0 of the trace is the current tick).
    /// Ids are caller-chosen but must be fresh — a departed id cannot
    /// re-arrive.
    Arrive {
        /// Fresh VM id; indexes the controller's registry (and the
        /// period cost matrices) from now on.
        id: usize,
        /// Demand trace starting at the arrival instant. Samples past
        /// its end (or after departure) read as zero demand.
        trace: TimeSeries,
        /// Remaining lease in samples, when known (`None` =
        /// open-ended). Lease-aware admission uses it to keep
        /// soon-empty servers drainable; the caller remains
        /// responsible for sending the matching
        /// [`VmEvent::Depart`].
        lease_samples: Option<usize>,
    },
    /// The VM's lease ends; it is evicted from its server before the
    /// next sample is replayed.
    Depart {
        /// Id of a currently live VM.
        id: usize,
    },
    /// A provisioned server fails. Its residents are
    /// emergency-evacuated through the active policy (failed servers
    /// excluded); residents the shrunken fleet cannot host enter the
    /// bounded deferred-admission queue. While any server is failed
    /// the controller runs **degraded**: fragmentation/hybrid
    /// consolidation and deliberate boundary overcommit are suspended
    /// (the [`QosGuard`] stays armed).
    ServerFail {
        /// Index of a currently provisioned, healthy server.
        server: usize,
    },
    /// A failed server comes back. Its slot is admissible again and
    /// the deferred-admission queue immediately retries in FIFO order.
    ServerRecover {
        /// Index of a currently failed server.
        server: usize,
    },
    /// Advance one monitoring sample.
    Tick,
}

/// One capacity violation instance, as streamed to
/// [`MetricSink::on_violation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViolationEvent {
    /// Global sample index.
    pub sample: usize,
    /// Placement period index.
    pub period: usize,
    /// Server (placement bin) index.
    pub server: usize,
    /// Fleet class of the server.
    pub class: usize,
    /// Aggregate demand at the instant, cores.
    pub demand: f64,
    /// Frequency-scaled capacity it exceeded, cores.
    pub capacity: f64,
}

/// Streaming observer of a controller session. All methods default to
/// no-ops; implement the ones you care about.
///
/// # Example
///
/// A sink that tallies periods and narrates every re-pack (periodic
/// *and* fragmentation-fired):
///
/// ```
/// use cavm_sim::{MetricSink, PeriodRecord, RepackEvent, RepackReason};
///
/// #[derive(Default)]
/// struct Tally {
///     periods: usize,
///     offcycle: usize,
/// }
///
/// impl MetricSink for Tally {
///     fn on_period(&mut self, _record: &PeriodRecord) {
///         self.periods += 1;
///     }
///
///     fn on_repack(&mut self, event: &RepackEvent) {
///         if let RepackReason::Fragmentation { estimate, active } = event.reason {
///             self.offcycle += 1;
///             println!(
///                 "t={} re-pack: {} servers packed into {} (bound {})",
///                 event.sample, active, event.servers_after, estimate,
///             );
///         }
///     }
/// }
///
/// let mut sink = Tally::default();
/// sink.on_repack(&RepackEvent {
///     sample: 900,
///     period: 1,
///     reason: RepackReason::Fragmentation { estimate: 3, active: 5 },
///     servers_before: 5,
///     servers_after: 3,
///     migrations: 4,
///     slack_after: Some(1),
/// });
/// assert_eq!(sink.offcycle, 1);
/// ```
pub trait MetricSink {
    /// A placement period completed.
    fn on_period(&mut self, record: &PeriodRecord) {
        let _ = record;
    }

    /// A full re-pack of the live placement ran — at a period boundary
    /// ([`RepackReason::Periodic`]) or fired off-cycle by a
    /// [`RepackTrigger`] fragmentation predicate
    /// ([`RepackReason::Fragmentation`]).
    fn on_repack(&mut self, event: &RepackEvent) {
        let _ = event;
    }

    /// A VM moved servers across a period boundary (migration).
    fn on_migration(&mut self, period: usize, vm: usize, from: usize, to: usize) {
        let _ = (period, vm, from, to);
    }

    /// A server exceeded its frequency-scaled capacity for one sample.
    fn on_violation(&mut self, event: &ViolationEvent) {
        let _ = event;
    }

    /// Energy a server class consumed over the just-completed period.
    fn on_class_energy(&mut self, period: usize, class: usize, name: &str, period_joules: f64) {
        let _ = (period, class, name, period_joules);
    }

    /// A mid-period arrival was admitted through the incremental
    /// single-VM placement path.
    fn on_admit(&mut self, sample: usize, vm: usize, server: usize) {
        let _ = (sample, vm, server);
    }

    /// A server failed ([`VmEvent::ServerFail`]); `residents` is the
    /// number of VMs about to be emergency-evacuated. Fires before the
    /// evacuation's migrations and its
    /// [`RepackReason::Evacuation`] re-pack event.
    fn on_server_fail(&mut self, sample: usize, server: usize, residents: usize) {
        let _ = (sample, server, residents);
    }

    /// A failed server recovered ([`VmEvent::ServerRecover`]); fires
    /// before the deferred-admission queue retries.
    fn on_server_recover(&mut self, sample: usize, server: usize) {
        let _ = (sample, server);
    }

    /// The session finished; `report` is the terminal aggregate (the
    /// same `SimReport` the batch API returns).
    fn on_summary(&mut self, report: &SimReport) {
        let _ = report;
    }
}

/// A sink that ignores every event — for callers that only want the
/// terminal report via [`DatacenterController::report`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl MetricSink for NullSink {}

/// Collects the stream back into batch-shaped results: the period
/// records as they arrive and the terminal [`SimReport`] — this is the
/// sink `Scenario::run` drives to keep the old API working.
#[derive(Debug, Clone, Default)]
pub struct ReportSink {
    periods: Vec<PeriodRecord>,
    repacks: Vec<RepackEvent>,
    migrations: usize,
    violations: usize,
    admissions: usize,
    report: Option<SimReport>,
}

impl ReportSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Period records streamed so far.
    pub fn periods(&self) -> &[PeriodRecord] {
        &self.periods
    }

    /// Migration events streamed so far.
    pub fn migrations(&self) -> usize {
        self.migrations
    }

    /// Violation instances streamed so far.
    pub fn violations(&self) -> usize {
        self.violations
    }

    /// Incremental admissions streamed so far.
    pub fn admissions(&self) -> usize {
        self.admissions
    }

    /// Every re-pack streamed so far (periodic and off-cycle).
    pub fn repacks(&self) -> &[RepackEvent] {
        &self.repacks
    }

    /// Off-cycle re-packs streamed so far — fragmentation-fired plus
    /// [`QosGuard`]-fired (boundary [`RepackReason::Overcommit`]
    /// capacity checks ride the period clock and are not counted).
    pub fn offcycle_repacks(&self) -> usize {
        self.repacks
            .iter()
            .filter(|r| {
                matches!(
                    r.reason,
                    RepackReason::Fragmentation { .. } | RepackReason::QosGuard { .. }
                )
            })
            .count()
    }

    /// The terminal report, once [`MetricSink::on_summary`] has fired.
    pub fn into_report(self) -> Option<SimReport> {
        self.report
    }
}

impl MetricSink for ReportSink {
    fn on_period(&mut self, record: &PeriodRecord) {
        self.periods.push(record.clone());
    }

    fn on_repack(&mut self, event: &RepackEvent) {
        self.repacks.push(*event);
    }

    fn on_migration(&mut self, _period: usize, _vm: usize, _from: usize, _to: usize) {
        self.migrations += 1;
    }

    fn on_violation(&mut self, _event: &ViolationEvent) {
        self.violations += 1;
    }

    fn on_admit(&mut self, _sample: usize, _vm: usize, _server: usize) {
        self.admissions += 1;
    }

    fn on_summary(&mut self, report: &SimReport) {
        self.report = Some(report.clone());
    }
}

/// Static configuration of a controller session — the scenario knobs
/// minus the trace fleet (traces arrive with the VMs).
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// The server fleet to place onto. Must be bounded.
    pub server_fleet: ServerFleet,
    /// Placement policy (periodic re-packs *and* the incremental
    /// admission rule).
    pub policy: Policy,
    /// When the live placement is re-packed (default:
    /// [`RepackTrigger::Periodic`], the paper's fixed schedule).
    pub repack_trigger: RepackTrigger,
    /// The QoS dimension of the re-pack schedule: fire an off-cycle
    /// re-pack when the observed worst per-server violation ratio of
    /// the running period exceeds the guard's threshold, and
    /// force-repack overcommitted servers at placement-keeping period
    /// boundaries. `None` (the default) disables both checks.
    pub qos_guard: Option<QosGuard>,
    /// Upper bound for the adaptive fragmentation slack: when set, a
    /// [`SlackController`] walks the slack between the trigger's
    /// configured value and this bound from each fired re-pack's
    /// realized servers-freed-per-migration gain. Requires a trigger
    /// with a fragmentation dimension; `None` keeps the slack static.
    pub adaptive_slack_max: Option<u32>,
    /// Deliberate correlation-gap overcommit: when set, admission and
    /// re-packs accept predicted per-VM sums up to `capacity × (1 +
    /// margin)` on servers whose Eqn (1) coincident estimate stays
    /// within plain capacity, with a per-class
    /// [`OvercommitController`] walking the live margin from observed
    /// violation ratios. Requires a configured [`qos_guard`] (the
    /// reactive backstop); suspended in degraded mode. `None` (the
    /// default) keeps every margin at zero — bit-identical to the
    /// margin-free controller.
    ///
    /// [`qos_guard`]: ControllerConfig::qos_guard
    pub overcommit: Option<OvercommitConfig>,
    /// Static or dynamic frequency scaling.
    pub dvfs_mode: DvfsMode,
    /// Samples per placement period.
    pub period_samples: usize,
    /// Reference utilization for provisioning.
    pub reference: Reference,
    /// Relative headroom of the dynamic governor.
    pub dynamic_headroom: f64,
    /// Demand assumed for a VM before its first observed period — also
    /// the provisioning used to admit a brand-new arrival.
    pub default_demand: f64,
    /// Monitoring sample interval, seconds (the energy-integration dt).
    pub sample_dt_s: f64,
    /// Capacity of the degraded-mode deferred-admission queue: how
    /// many live-but-unplaceable VMs the controller will hold and
    /// retry (each tick, at every recovery and at period boundaries)
    /// after server failures shrink the fleet. An event that would
    /// overflow the queue is rejected atomically with
    /// [`SimError::DeferredQueueFull`]. Must be at least 1.
    pub max_deferred: usize,
}

impl ControllerConfig {
    fn validate(&self) -> crate::Result<()> {
        if self.server_fleet.total_slots().is_none() {
            return Err(SimError::InvalidParameter(
                "controller fleets must be bounded (no UNBOUNDED classes)",
            ));
        }
        if self.period_samples == 0 {
            return Err(SimError::InvalidParameter(
                "period must be at least one sample",
            ));
        }
        if self.repack_trigger.slack() == Some(0) {
            // Slack 0 would fire on every armed tick regardless of
            // fragmentation — a busy-loop, not a trigger.
            return Err(SimError::InvalidParameter(
                "fragmentation slack must be at least one server",
            ));
        }
        if let Some(guard) = self.qos_guard {
            if !(guard.violation_ratio.is_finite()
                && guard.violation_ratio > 0.0
                && guard.violation_ratio <= 1.0)
            {
                return Err(SimError::InvalidParameter(
                    "qos guard violation ratio must lie in (0, 1]",
                ));
            }
        }
        if let Some(max) = self.adaptive_slack_max {
            match self.repack_trigger.slack() {
                None => {
                    return Err(SimError::InvalidParameter(
                        "adaptive slack requires a trigger with a fragmentation dimension",
                    ))
                }
                Some(slack) if max < slack => {
                    return Err(SimError::InvalidParameter(
                        "adaptive slack bound must be at least the trigger's slack",
                    ))
                }
                Some(_) => {}
            }
        }
        if let Some(oc) = self.overcommit {
            if self.qos_guard.is_none() {
                return Err(SimError::InvalidParameter(
                    "deliberate overcommit requires a qos guard as its reactive backstop",
                ));
            }
            if !(oc.max_margin.is_finite() && oc.max_margin > 0.0 && oc.max_margin <= 1.0) {
                return Err(SimError::InvalidParameter(
                    "overcommit max margin must lie in (0, 1]",
                ));
            }
            if !(oc.margin.is_finite() && oc.margin >= 0.0 && oc.margin <= oc.max_margin) {
                return Err(SimError::InvalidParameter(
                    "overcommit margin must lie in [0, max_margin]",
                ));
            }
        }
        if !(self.dynamic_headroom.is_finite() && self.dynamic_headroom >= 0.0) {
            return Err(SimError::InvalidParameter("dynamic headroom must be >= 0"));
        }
        if !(self.default_demand.is_finite() && self.default_demand > 0.0) {
            return Err(SimError::InvalidParameter("default demand must be > 0"));
        }
        if !(self.sample_dt_s.is_finite() && self.sample_dt_s > 0.0) {
            return Err(SimError::InvalidParameter(
                "sample interval must be finite and > 0",
            ));
        }
        if self.max_deferred == 0 {
            return Err(SimError::InvalidParameter(
                "deferred-admission queue needs at least one slot",
            ));
        }
        if let Policy::Proposed(config) = self.policy {
            // Surface a bad tuning at session construction, not at the
            // first period boundary (or, worse, silently at an
            // incremental admit).
            ProposedPolicy::new(config).map_err(SimError::Core)?;
        }
        if let Policy::Pcp {
            envelope_percentile,
            affinity_threshold,
        } = self.policy
        {
            if !(0.0 < envelope_percentile && envelope_percentile < 100.0) {
                return Err(SimError::InvalidParameter(
                    "pcp envelope percentile must lie in (0, 100)",
                ));
            }
            if !(0.0..=1.0).contains(&affinity_threshold) {
                return Err(SimError::InvalidParameter(
                    "pcp affinity threshold must lie in [0, 1]",
                ));
            }
        }
        if let Policy::SuperVm { min_pair_cost } = self.policy {
            if !min_pair_cost.is_finite() {
                return Err(SimError::InvalidParameter(
                    "super-vm pair-cost threshold must be finite",
                ));
            }
        }
        if let DvfsMode::Dynamic { interval_samples } = self.dvfs_mode {
            if interval_samples == 0 {
                return Err(SimError::InvalidParameter(
                    "dynamic interval must be >= 1 sample",
                ));
            }
        }
        Ok(())
    }
}

/// One registered VM.
#[derive(Debug, Clone)]
struct VmSlot {
    /// Demand trace; sample 0 is the arrival instant.
    trace: TimeSeries,
    /// Global sample index of the arrival.
    arrival: usize,
    /// Global sample index at which the lease ends, when known.
    lease_end: Option<usize>,
    /// `false` once departed.
    live: bool,
    /// Last observed per-period reference peak (predictor state).
    last_peak: Option<f64>,
    /// Last observed per-period 90th percentile (predictor state).
    last_off: Option<f64>,
}

/// Demand of a registered VM at global sample `k` (zero before arrival,
/// after departure, or past the end of its trace).
fn sample_of(slot: &Option<VmSlot>, k: usize) -> f64 {
    match slot {
        Some(s) if s.live && k >= s.arrival => {
            s.trace.values().get(k - s.arrival).copied().unwrap_or(0.0)
        }
        _ => 0.0,
    }
}

/// The stateful online allocation session. See the [module
/// docs](self) for event semantics.
///
/// The session is cheaply `Clone`-able end to end — registry, live
/// placement, per-server cost aggregates, energy meters,
/// guard/slack/overcommit controllers, health and the deferred queue
/// are all value state (the period cost matrix is the only
/// heavyweight member, O(live VMs²) floats). [`snapshot`](Self::snapshot)
/// and [`fork`](Self::fork) build on that, and [`what_if`](Self::what_if)
/// answers "what would a re-pack buy right now?" against a fork
/// without perturbing the live session.
#[derive(Debug, Clone)]
pub struct DatacenterController {
    cfg: ControllerConfig,
    planner: FleetFrequencyPlanner,
    class_wpc: Vec<f64>,
    total_slots: usize,
    /// Sorted union of every class ladder (the report histogram axis).
    union_ghz: Vec<f64>,
    /// `union_level[class][class_level]` → union axis column.
    union_level: Vec<Vec<usize>>,

    // ---- registry & clock.
    slots: Vec<Option<VmSlot>>,
    clock: usize,
    period: usize,
    period_start: usize,
    in_period: bool,
    finished: bool,

    // ---- live placement state (valid while `in_period`).
    placement: Placement,
    aggregates: Vec<ServerCostAggregate>,
    classes_of: Vec<usize>,
    cores_of: Vec<f64>,
    freq_idx: Vec<usize>,
    window_max_agg: Vec<f64>,
    window_max_vm: Vec<f64>,
    server_violations: Vec<usize>,
    /// Worst per-server violation ratio folded out of counters an
    /// off-cycle re-pack discarded (the bins changed under them).
    period_ratio_floor: f64,
    period_migrations: usize,
    /// Set by a departure-caused eviction; the next tick evaluates the
    /// fragmentation predicate and clears it (between membership
    /// changes the predicate cannot change).
    repack_armed: bool,
    /// Set by a recorded capacity violation when a [`QosGuard`] is
    /// configured; the next tick evaluates the guard predicate and
    /// clears it (between violations the period ratio cannot rise).
    qos_armed: bool,
    /// The live fragmentation slack; `Some` exactly when the trigger
    /// has a fragmentation dimension (degenerate equal bounds when
    /// [`ControllerConfig::adaptive_slack_max`] is unset).
    slack_ctl: Option<SlackController>,
    /// The live deliberate-overcommit margins, one per fleet class;
    /// `Some` exactly when [`ControllerConfig::overcommit`] is set.
    overcommit_ctl: Option<Vec<OvercommitController>>,
    /// Per server slot: the period index until which the boundary trim
    /// loop's revocation holds — a trimmed server is denied further
    /// deliberate overcommit through this period, breaking the
    /// admit-then-trim ping-pong. Parallel to `placement`; reset
    /// wholesale by a full batch re-pack (slots renumber).
    overcommit_hold: Vec<usize>,
    pcp_clusters: Option<usize>,
    period_class_joules_start: Vec<f64>,
    assignment: Vec<Option<usize>>,
    /// Dense (id-indexed) descriptor table of the current period.
    dense_vms: Vec<VmDescriptor>,

    // ---- fault-tolerance state.
    /// Per-provisioned-server health, parallel to `placement`. Only
    /// rebuilt wholesale by a full batch re-pack, which degraded mode
    /// suspends — so failed slots survive period boundaries.
    health: Vec<ServerHealth>,
    /// Live-but-unplaceable VM ids, FIFO. Retried every tick, at each
    /// recovery and at period boundaries; bounded by
    /// [`ControllerConfig::max_deferred`].
    deferred: VecDeque<usize>,

    // ---- period window & matrix state.
    matrix: Option<CostMatrix>,
    window: Vec<Vec<f64>>,
    prev_window: Option<Vec<TimeSeries>>,
    sample_buf: Vec<f64>,

    // ---- run accumulators.
    class_energy: Vec<EnergyMeter>,
    class_violations: Vec<usize>,
    class_migrations: Vec<usize>,
    class_peak_servers: Vec<usize>,
    freq_histogram: Vec<Vec<u64>>,
    class_freq_histogram: Vec<Vec<u64>>,
    period_records: Vec<PeriodRecord>,
    violation_instances: usize,
    online_admissions: usize,
    offcycle_repacks: usize,
    server_failures: usize,
    server_recoveries: usize,
    evacuations: usize,
    deferred_peak: usize,
}

impl DatacenterController {
    /// Opens a session.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for an unbounded fleet or
    /// out-of-range tuning values.
    pub fn new(cfg: ControllerConfig) -> crate::Result<Self> {
        cfg.validate()?;
        let fleet = &cfg.server_fleet;
        let n_classes = fleet.len();
        let total_slots = fleet
            .total_slots()
            .expect("validation rejects unbounded fleets");
        let planner = FleetFrequencyPlanner::new(fleet);
        let class_wpc: Vec<f64> = fleet
            .classes()
            .iter()
            .map(|c| c.busy_watts_per_core())
            .collect();

        // The histogram's frequency axis is the sorted union of every
        // class ladder (a uniform fleet keeps its own ladder).
        let mut union_ghz: Vec<f64> = fleet
            .classes()
            .iter()
            .flat_map(|c| c.ladder().levels().iter().map(|f| f.as_ghz()))
            .collect();
        union_ghz.sort_by(|a, b| a.partial_cmp(b).expect("finite frequencies"));
        union_ghz.dedup();
        let union_level: Vec<Vec<usize>> = fleet
            .classes()
            .iter()
            .map(|c| {
                c.ladder()
                    .levels()
                    .iter()
                    .map(|f| {
                        union_ghz
                            .iter()
                            .position(|&g| g == f.as_ghz())
                            .expect("union contains every class level")
                    })
                    .collect()
            })
            .collect();
        let class_freq_histogram = fleet
            .classes()
            .iter()
            .map(|c| vec![0u64; c.ladder().len()])
            .collect();

        Ok(Self {
            planner,
            class_wpc,
            total_slots,
            freq_histogram: vec![vec![0u64; union_ghz.len()]; total_slots],
            union_ghz,
            union_level,
            slots: Vec::new(),
            clock: 0,
            period: 0,
            period_start: 0,
            in_period: false,
            finished: false,
            placement: Placement::from_servers(vec![]),
            aggregates: Vec::new(),
            classes_of: Vec::new(),
            cores_of: Vec::new(),
            freq_idx: Vec::new(),
            window_max_agg: Vec::new(),
            window_max_vm: Vec::new(),
            server_violations: Vec::new(),
            period_ratio_floor: 0.0,
            period_migrations: 0,
            repack_armed: false,
            qos_armed: false,
            slack_ctl: cfg
                .repack_trigger
                .slack()
                .map(|s| SlackController::new(s, cfg.adaptive_slack_max.unwrap_or(s))),
            overcommit_ctl: cfg
                .overcommit
                .map(|oc| vec![OvercommitController::new(oc.margin, oc.max_margin); n_classes]),
            overcommit_hold: Vec::new(),
            pcp_clusters: None,
            period_class_joules_start: vec![0.0; n_classes],
            assignment: Vec::new(),
            dense_vms: Vec::new(),
            matrix: None,
            window: Vec::new(),
            prev_window: None,
            sample_buf: Vec::new(),
            class_energy: vec![EnergyMeter::new(); n_classes],
            class_violations: vec![0; n_classes],
            class_migrations: vec![0; n_classes],
            class_peak_servers: vec![0; n_classes],
            class_freq_histogram,
            period_records: Vec::new(),
            violation_instances: 0,
            online_admissions: 0,
            offcycle_repacks: 0,
            health: Vec::new(),
            deferred: VecDeque::new(),
            server_failures: 0,
            server_recoveries: 0,
            evacuations: 0,
            deferred_peak: 0,
            cfg,
        })
    }

    /// The session configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Global sample index of the next tick.
    pub fn clock(&self) -> usize {
        self.clock
    }

    /// Number of currently live VMs.
    pub fn live_vms(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.as_ref().is_some_and(|s| s.live))
            .count()
    }

    /// VMs admitted through the incremental (mid-period) path so far.
    pub fn online_admissions(&self) -> usize {
        self.online_admissions
    }

    /// Off-cycle (fragmentation-fired) re-packs so far.
    pub fn offcycle_repacks(&self) -> usize {
        self.offcycle_repacks
    }

    /// Per-provisioned-server health, parallel to
    /// [`DatacenterController::placement`].
    pub fn server_health(&self) -> &[ServerHealth] {
        &self.health
    }

    /// Currently failed servers.
    pub fn failed_servers(&self) -> usize {
        self.health.iter().filter(|h| h.is_failed()).count()
    }

    /// Whether the controller is in degraded mode: at least one server
    /// is failed, or the deferred-admission queue is non-empty (the
    /// fleet has not yet re-absorbed everything a failure displaced).
    /// Degraded mode suspends fragmentation/hybrid consolidation and
    /// deliberate boundary overcommit; the [`QosGuard`] stays armed.
    pub fn degraded(&self) -> bool {
        !self.deferred.is_empty() || self.health.iter().any(|h| h.is_failed())
    }

    /// Live VMs currently waiting in the deferred-admission queue.
    pub fn deferred_vms(&self) -> usize {
        self.deferred.len()
    }

    /// Ids currently waiting in the deferred-admission queue, in FIFO
    /// retry order.
    pub fn deferred_ids(&self) -> Vec<usize> {
        self.deferred.iter().copied().collect()
    }

    /// High-water mark of the deferred-admission queue over the
    /// session.
    pub fn deferred_peak(&self) -> usize {
        self.deferred_peak
    }

    /// [`VmEvent::ServerFail`] events processed so far (monotone).
    pub fn server_failures(&self) -> usize {
        self.server_failures
    }

    /// [`VmEvent::ServerRecover`] events processed so far (monotone).
    pub fn server_recoveries(&self) -> usize {
        self.server_recoveries
    }

    /// VMs moved onto an outliving server by emergency evacuations so
    /// far (monotone; deferred evacuees count once they actually
    /// admit, as online admissions).
    pub fn evacuations(&self) -> usize {
        self.evacuations
    }

    /// The live placement — stale between periods (the next period's
    /// first tick rebuilds or compacts it).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The dense (id-indexed) predicted descriptor table of the
    /// current period: departed VMs read zero demand, unobserved live
    /// VMs the configured default.
    pub fn predicted_vms(&self) -> &[VmDescriptor] {
        &self.dense_vms
    }

    /// Whether the controller is inside a placement period (at least
    /// one tick replayed since the last boundary).
    pub fn mid_period(&self) -> bool {
        self.in_period
    }

    /// Whether a departure has armed the fragmentation check for the
    /// next tick (always `false` under [`RepackTrigger::Periodic`]).
    pub fn repack_armed(&self) -> bool {
        self.repack_armed
    }

    /// Whether a recorded violation has armed the [`QosGuard`] check
    /// for the next tick (always `false` without a configured guard).
    pub fn qos_armed(&self) -> bool {
        self.qos_armed
    }

    /// Worst per-server over-capacity sample count accumulated in the
    /// running period, among servers the guard could act on (at least
    /// two members — a lone tenant exceeding its own capacity cannot
    /// be helped by any placement move, so it never arms the guard's
    /// predicate; its violations still reach the period record). Live
    /// counters only: counters a previous off-cycle re-pack discarded
    /// contribute to the period *record* through its folded floor, not
    /// here. This is the count the [`QosGuard`] predicate divides by
    /// the period length.
    pub fn period_worst_violations(&self) -> usize {
        self.server_violations
            .iter()
            .enumerate()
            .filter(|&(s, _)| {
                self.placement
                    .servers()
                    .get(s)
                    .is_some_and(|m| m.len() >= 2)
            })
            .map(|(_, &v)| v)
            .max()
            .unwrap_or(0)
    }

    /// [`DatacenterController::period_worst_violations`] as a ratio of
    /// the period length — the quantity a [`QosGuard`] thresholds.
    pub fn period_violation_ratio(&self) -> f64 {
        self.period_worst_violations() as f64 / self.cfg.period_samples as f64
    }

    /// The fragmentation slack currently in effect — adapted by the
    /// [`SlackController`] when
    /// [`ControllerConfig::adaptive_slack_max`] is set, else the
    /// trigger's static value. `None` under
    /// [`RepackTrigger::Periodic`].
    pub fn current_slack(&self) -> Option<u32> {
        self.slack_ctl.map(|c| c.current())
    }

    /// The deliberate-overcommit margins currently in effect, one per
    /// fleet class — walked by the per-class [`OvercommitController`]s
    /// from observed violation ratios. `None` without
    /// [`ControllerConfig::overcommit`]. Degraded mode and per-slot
    /// trim holds suspend the margins *in use* without changing these
    /// controller values.
    pub fn overcommit_margins(&self) -> Option<Vec<f64>> {
        self.overcommit_ctl
            .as_ref()
            .map(|ctls| ctls.iter().map(|c| c.current()).collect())
    }

    /// Whether server `s` is under a boundary-trim revocation hold: an
    /// evidence-backed trim denies the slot further deliberate
    /// overcommit through the following period, breaking the
    /// admit-then-trim ping-pong.
    pub fn overcommit_held(&self, s: usize) -> bool {
        self.overcommit_hold.get(s).copied().unwrap_or(0) > self.period
    }

    /// The deliberate-overcommit margin in effect for server `s` right
    /// now: zero when overcommit is unconfigured, suspended by
    /// degraded mode, or revoked for this slot by a boundary trim.
    fn margin_of(&self, s: usize) -> f64 {
        if self.degraded() || self.overcommit_held(s) {
            return 0.0;
        }
        match (&self.overcommit_ctl, self.classes_of.get(s)) {
            (Some(ctls), Some(&class)) => ctls[class].current(),
            _ => 0.0,
        }
    }

    /// The per-class margin vector the batch re-pack packs with: the
    /// live controller values, or all zeros when overcommit is off or
    /// the controller is degraded (a full re-pack renumbers slots, so
    /// per-slot holds do not apply here).
    fn batch_margins(&self) -> Vec<f64> {
        let n = self.cfg.server_fleet.len();
        if self.degraded() {
            return vec![0.0; n];
        }
        self.overcommit_margins().unwrap_or_else(|| vec![0.0; n])
    }

    /// The live Eqn (3) lower bound: the fill-order server count
    /// [`ServerFleet::estimate_server_count`] needs for the placed
    /// VMs' predicted demand. The fragmentation predicate compares
    /// this against [`Placement::active_server_count`].
    ///
    /// [`ServerFleet::estimate_server_count`]: cavm_core::fleet::ServerFleet::estimate_server_count
    pub fn fragmentation_estimate(&self) -> usize {
        let total: f64 = self
            .placement
            .servers()
            .iter()
            .flatten()
            .map(|&id| self.dense_vms[id].demand)
            .sum();
        self.cfg.server_fleet.estimate_server_count(total)
    }

    /// Applies one lifecycle event.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SessionFinished`] after [`finish`],
    /// [`SimError::DuplicateVm`] / [`SimError::UnknownVm`] /
    /// [`SimError::VmAlreadyDeparted`] for malformed VM events,
    /// [`SimError::UnknownServer`] / [`SimError::ServerAlreadyFailed`]
    /// / [`SimError::ServerNotFailed`] for malformed server-health
    /// events and [`SimError::DeferredQueueFull`] when degraded-mode
    /// deferral would overflow (the event is rejected atomically);
    /// placement/trace/power errors propagate, with fleet exhaustion
    /// mapped to [`SimError::InsufficientServers`].
    ///
    /// [`finish`]: DatacenterController::finish
    pub fn apply(&mut self, event: VmEvent, sink: &mut dyn MetricSink) -> crate::Result<()> {
        match event {
            VmEvent::Arrive {
                id,
                trace,
                lease_samples,
            } => self.arrive(id, trace, lease_samples, sink),
            VmEvent::Depart { id } => self.depart(id),
            VmEvent::ServerFail { server } => self.server_fail(server, sink),
            VmEvent::ServerRecover { server } => self.server_recover(server, sink),
            VmEvent::Tick => self.tick(sink),
        }
    }

    fn check_open(&self) -> crate::Result<()> {
        if self.finished {
            return Err(SimError::SessionFinished);
        }
        Ok(())
    }

    /// Registers an arriving VM with an optional remaining lease (in
    /// samples). Mid-period arrivals are admitted incrementally (no
    /// re-pack), biased away from servers draining sooner than the
    /// lease; arrivals between periods join the next period's batch
    /// placement.
    ///
    /// # Errors
    ///
    /// See [`DatacenterController::apply`].
    pub fn arrive(
        &mut self,
        id: usize,
        trace: TimeSeries,
        lease_samples: Option<usize>,
        sink: &mut dyn MetricSink,
    ) -> crate::Result<()> {
        self.check_open()?;
        if self.slots.get(id).is_some_and(|s| s.is_some()) {
            return Err(SimError::DuplicateVm { id });
        }
        while self.slots.len() <= id {
            let fresh = self.slots.len();
            self.slots.push(None);
            self.dense_vms
                .push(VmDescriptor::new(fresh, 0.0).with_off_peak(0.0));
        }
        self.slots[id] = Some(VmSlot {
            trace,
            arrival: self.clock,
            lease_end: lease_samples.map(|l| self.clock.saturating_add(l)),
            live: true,
            last_peak: None,
            last_off: None,
        });
        if self.in_period {
            let demand = self.cfg.default_demand;
            let vm = VmDescriptor::new(id, demand).with_off_peak(demand * 0.9);
            if self.degraded() {
                // The fleet is short on capacity because servers
                // failed: an arrival that cannot be hosted degrades
                // into the deferred queue instead of aborting the
                // session. A full queue rejects the event atomically —
                // the registration above is rolled back.
                match self.admit_live(vm, sink) {
                    Err(SimError::InsufficientServers { .. }) => {
                        if let Err(full) = self.defer(id) {
                            self.slots[id] = None;
                            self.dense_vms[id] = VmDescriptor::new(id, 0.0).with_off_peak(0.0);
                            return Err(full);
                        }
                    }
                    other => other?,
                }
            } else {
                self.admit_live(vm, sink)?;
            }
        }
        Ok(())
    }

    /// Ends a VM's lease.
    ///
    /// # Errors
    ///
    /// See [`DatacenterController::apply`].
    pub fn depart(&mut self, id: usize) -> crate::Result<()> {
        self.check_open()?;
        let slot = self
            .slots
            .get_mut(id)
            .and_then(|s| s.as_mut())
            .ok_or(SimError::UnknownVm { id })?;
        if !slot.live {
            return Err(SimError::VmAlreadyDeparted { id });
        }
        slot.live = false;
        if self.deferred.contains(&id) {
            // A queued VM departing simply leaves the queue — it was
            // never placed.
            self.deferred.retain(|&d| d != id);
            self.dense_vms[id] = VmDescriptor::new(id, 0.0).with_off_peak(0.0);
            return Ok(());
        }
        if self.in_period && self.placement.server_of(id).is_some() {
            let server = self.placement.evict(id).map_err(SimError::Core)?;
            self.dense_vms[id] = VmDescriptor::new(id, 0.0).with_off_peak(0.0);
            if let Some(a) = self.assignment.get_mut(id) {
                *a = None;
            }
            // Rebuild the vacated server's aggregate from the remaining
            // members and re-plan its frequency.
            let matrix = self
                .matrix
                .as_ref()
                .expect("a placed vm implies a period matrix");
            let mut agg = ServerCostAggregate::new();
            for &m in &self.placement.servers()[server] {
                agg.push(m, self.dense_vms[m].demand, matrix);
            }
            self.aggregates[server] = agg;
            self.replan_bin(server)?;
            // A departure is what creates fragmentation: arm the
            // off-cycle check for the next tick.
            if self.cfg.repack_trigger.slack().is_some() {
                self.repack_armed = true;
            }
        }
        Ok(())
    }

    /// Advances one monitoring sample.
    ///
    /// # Errors
    ///
    /// See [`DatacenterController::apply`].
    pub fn tick(&mut self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        self.check_open()?;
        if !self.in_period {
            self.start_period(sink)?;
            // The boundary may have placed queued VMs (or outlived
            // their departure): drop stale queue entries so degraded
            // mode ends as soon as everything is re-absorbed.
            self.prune_deferred();
            self.in_period = true;
        } else {
            // Degraded mode retries the deferred queue every tick —
            // departures free capacity between recoveries.
            if !self.deferred.is_empty() {
                self.drain_deferred(sink)?;
            }
            // QoS outranks energy: an armed guard is evaluated first.
            // Its surgical re-pack does NOT consolidate (it can even
            // open a server), so a pending fragmentation check is not
            // consumed — it stays armed and is evaluated next tick,
            // against the post-heal placement.
            let qos_fired = self.maybe_qos_repack(sink)?;
            // While degraded, consolidation into the shrunken fleet is
            // suspended: the armed flag is *kept* so the check runs
            // once capacity is whole again.
            if !qos_fired && self.repack_armed && !self.degraded() {
                self.repack_armed = false;
                let estimate = self.fragmentation_estimate();
                let active = self.placement.active_server_count();
                let slack = self.slack_ctl.map(|c| c.current());
                let gap = active.saturating_sub(estimate);
                if slack.is_some_and(|s| gap >= s as usize) {
                    self.offcycle_repack(estimate, active, sink)?;
                } else if let Some(ctl) = self.slack_ctl.as_mut() {
                    // Armed but below the (possibly raised) slack:
                    // let the adaptive controller see the missed
                    // consolidation so a raised slack can decay.
                    ctl.observe_miss(gap);
                }
            }
        }
        self.replay_tick(sink)?;
        self.clock += 1;
        if self.clock - self.period_start == self.cfg.period_samples {
            self.end_period(sink)?;
        }
        Ok(())
    }

    /// Fails a provisioned server and emergency-evacuates its
    /// residents: each re-admits through the active policy's single-VM
    /// rule (failed servers are never candidates), streamed as
    /// migrations under one [`RepackReason::Evacuation`] event;
    /// residents the shrunken fleet cannot host enter the deferred
    /// queue. The failed slot keeps consuming its fleet-class capacity
    /// (the hardware exists, it just cannot host) until
    /// [`VmEvent::ServerRecover`].
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownServer`] for an unprovisioned index,
    /// [`SimError::ServerAlreadyFailed`] for a double fault, and
    /// [`SimError::DeferredQueueFull`] when the residents could not
    /// all be queued in the worst case — checked *before* any state
    /// changes, so a rejected event leaves the session untouched.
    pub fn server_fail(&mut self, server: usize, sink: &mut dyn MetricSink) -> crate::Result<()> {
        self.check_open()?;
        let servers = self.placement.server_count();
        if server >= servers {
            return Err(SimError::UnknownServer { server, servers });
        }
        self.health.resize(servers, ServerHealth::Healthy);
        if self.health[server].is_failed() {
            return Err(SimError::ServerAlreadyFailed { server });
        }
        let residents = self.placement.servers()[server].len();
        if self.deferred.len() + residents > self.cfg.max_deferred {
            return Err(SimError::DeferredQueueFull {
                capacity: self.cfg.max_deferred,
            });
        }

        let servers_before = self.placement.active_server_count();
        self.health[server] = ServerHealth::Failed;
        self.server_failures += 1;
        sink.on_server_fail(self.clock, server, residents);
        if residents == 0 {
            return Ok(());
        }

        // Evacuate: the members leave their failed host wholesale, its
        // live state is zeroed, and each evacuee re-admits in id order
        // through the policy (health-aware, so neither the failed
        // origin nor any other failed server is a candidate).
        let mut evacuees = self
            .placement
            .drain_server(server)
            .map_err(SimError::Core)?;
        evacuees.sort_unstable();
        for &id in &evacuees {
            if let Some(a) = self.assignment.get_mut(id) {
                *a = None;
            }
        }
        self.aggregates[server] = ServerCostAggregate::new();
        let mut moved = 0usize;
        for &id in &evacuees {
            let vm = self.dense_vms[id];
            match self.admit_slot_excluding(vm, None) {
                Ok(dest) => {
                    moved += 1;
                    self.evacuations += 1;
                    self.class_migrations[self.placement.classes()[dest]] += 1;
                    sink.on_migration(self.period, id, server, dest);
                }
                Err(SimError::InsufficientServers { .. }) => {
                    self.defer(id)
                        .expect("capacity for every resident was checked above");
                }
                Err(e) => return Err(e),
            }
        }
        self.period_migrations += moved;
        sink.on_repack(&RepackEvent {
            sample: self.clock,
            period: self.period,
            reason: RepackReason::Evacuation { server },
            servers_before,
            servers_after: self.placement.active_server_count(),
            migrations: moved,
            slack_after: self.current_slack(),
        });
        Ok(())
    }

    /// Recovers a failed server: its slot is admissible again and the
    /// deferred-admission queue immediately retries in FIFO order.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownServer`] for an unprovisioned index and
    /// [`SimError::ServerNotFailed`] when the server is healthy.
    pub fn server_recover(
        &mut self,
        server: usize,
        sink: &mut dyn MetricSink,
    ) -> crate::Result<()> {
        self.check_open()?;
        let servers = self.placement.server_count();
        if server >= servers {
            return Err(SimError::UnknownServer { server, servers });
        }
        if !self.health.get(server).is_some_and(|h| h.is_failed()) {
            return Err(SimError::ServerNotFailed { server });
        }
        self.health[server] = ServerHealth::Healthy;
        self.server_recoveries += 1;
        sink.on_server_recover(self.clock, server);
        if !self.deferred.is_empty() {
            self.drain_deferred(sink)?;
        }
        Ok(())
    }

    /// Queues a live, unplaced VM for deferred admission (idempotent:
    /// an already-queued id is left in place).
    ///
    /// # Errors
    ///
    /// [`SimError::DeferredQueueFull`] when the queue is at capacity;
    /// nothing is mutated.
    fn defer(&mut self, id: usize) -> crate::Result<()> {
        if self.deferred.contains(&id) {
            return Ok(());
        }
        if self.deferred.len() >= self.cfg.max_deferred {
            return Err(SimError::DeferredQueueFull {
                capacity: self.cfg.max_deferred,
            });
        }
        self.deferred.push_back(id);
        self.deferred_peak = self.deferred_peak.max(self.deferred.len());
        Ok(())
    }

    /// Drops queue entries that no longer need admission: departed
    /// VMs, and VMs a period boundary already placed.
    fn prune_deferred(&mut self) {
        if self.deferred.is_empty() {
            return;
        }
        let deferred = std::mem::take(&mut self.deferred);
        self.deferred = deferred
            .into_iter()
            .filter(|&id| {
                self.slots[id].as_ref().is_some_and(|s| s.live)
                    && self.placement.server_of(id).is_none()
            })
            .collect();
    }

    /// Retries every queued VM once, FIFO: those the fleet can now
    /// host admit through the normal incremental path (counted as
    /// online admissions); the rest keep their queue position.
    fn drain_deferred(&mut self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        let pending: Vec<usize> = self.deferred.drain(..).collect();
        for id in pending {
            let live = self.slots[id].as_ref().is_some_and(|s| s.live);
            if !live || self.placement.server_of(id).is_some() {
                continue;
            }
            let vm = self.dense_vms[id];
            match self.admit_live(vm, sink) {
                Ok(()) => {}
                Err(SimError::InsufficientServers { .. }) => {
                    self.deferred.push_back(id);
                    // No peak update: the queue is no longer than it
                    // was before the drain.
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Ends the session: emits [`MetricSink::on_summary`] with the
    /// terminal report. A partially replayed period is dropped, like
    /// the trailing partial period of a batch run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if already finished.
    pub fn finish(&mut self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        self.check_open()?;
        self.finished = true;
        sink.on_summary(&self.report());
        Ok(())
    }

    /// The terminal aggregate over all *completed* periods — the same
    /// shape (and, for a batch-equivalent drive, the same bits) as
    /// [`Scenario::run`](crate::config::Scenario::run)'s report.
    pub fn report(&self) -> SimReport {
        let max_violation = self
            .period_records
            .iter()
            .map(|p| p.max_violation_ratio)
            .fold(0.0, f64::max);
        let mean_violation = if self.period_records.is_empty() {
            0.0
        } else {
            self.period_records
                .iter()
                .map(|p| p.max_violation_ratio)
                .sum::<f64>()
                / self.period_records.len() as f64
        };
        let mut energy = EnergyMeter::new();
        for meter in &self.class_energy {
            energy.merge(meter);
        }
        let classes: Vec<ClassBreakdown> = self
            .cfg
            .server_fleet
            .classes()
            .iter()
            .enumerate()
            .map(|(c, spec)| ClassBreakdown {
                name: spec.name().to_string(),
                cores: spec.cores(),
                servers_available: spec.count(),
                peak_servers_used: self.class_peak_servers[c],
                energy: self.class_energy[c],
                violation_instances: self.class_violations[c],
                migrations_in: self.class_migrations[c],
                freq_levels_ghz: spec.ladder().levels().iter().map(|f| f.as_ghz()).collect(),
                freq_histogram: self.class_freq_histogram[c].clone(),
            })
            .collect();
        SimReport {
            policy: self.cfg.policy.name().to_string(),
            dynamic_dvfs: matches!(self.cfg.dvfs_mode, DvfsMode::Dynamic { .. }),
            energy,
            max_violation_percent: max_violation * 100.0,
            mean_violation_percent: mean_violation * 100.0,
            violation_instances: self.violation_instances,
            periods: self.period_records.clone(),
            classes,
            freq_histogram: self.freq_histogram.clone(),
            freq_levels_ghz: self.union_ghz.clone(),
            online_admissions: self.online_admissions,
            offcycle_repacks: self.offcycle_repacks,
            sink_dropped_events: 0,
            server_failures: self.server_failures,
            evacuations: self.evacuations,
            deferred_peak: self.deferred_peak,
        }
    }

    // ---- snapshot / fork / what-if ----------------------------------------

    /// An independent copy of the session at this instant, for
    /// inspection or archival. The copy shares nothing with the live
    /// session; the dominant cost is the period cost matrix
    /// (O(live VMs²) floats).
    pub fn snapshot(&self) -> Self {
        self.clone()
    }

    /// Forks the session: the returned controller is a fully
    /// independent session that continues from this instant. Feeding
    /// both the original and the fork an identical event suffix
    /// produces bit-identical reports (pinned by the fork-equivalence
    /// property tests), and events applied to one are invisible to
    /// the other.
    pub fn fork(&self) -> Self {
        self.clone()
    }

    /// Opens a [`WhatIf`] probe over a fork of the session: run a
    /// hypothetical re-pack (or any event suffix) and read the delta,
    /// with the live session guaranteed untouched.
    pub fn what_if(&self) -> WhatIf {
        WhatIf { fork: self.clone() }
    }

    /// Estimated electrical power of the fleet at this instant, watts:
    /// each active healthy server's class power model evaluated at its
    /// current frequency plan and its members' **predicted** per-VM
    /// demands (the same Fig 2 UPDATE predictions placement used).
    /// Powered-off and failed servers draw nothing. This is the
    /// steady-state estimate the [`WhatIf`] delta is built from, not
    /// the metered energy of [`SimReport::energy`](crate::SimReport::energy).
    pub fn estimated_power_watts(&self) -> crate::Result<f64> {
        let mut watts = 0.0;
        for s in 0..self.placement.server_count() {
            let members: &[usize] = &self.placement.servers()[s];
            if members.is_empty() || self.health.get(s).is_some_and(|h| h.is_failed()) {
                continue;
            }
            let class = self.classes_of[s];
            let ladder = self.cfg.server_fleet.classes()[class].ladder();
            let f = ladder.get(self.freq_idx[s]).expect("index within ladder");
            let eff_capacity = self.cores_of[s] * f.ratio_to(ladder.max());
            let agg: f64 = members.iter().map(|&v| self.dense_vms[v].demand).sum();
            let u = (agg / eff_capacity).clamp(0.0, 1.0);
            watts += self.cfg.server_fleet.classes()[class]
                .power_model()
                .power(u, f)
                .map_err(SimError::Power)?;
        }
        Ok(watts)
    }

    // ---- period machinery -------------------------------------------------

    /// Replays a window into a matrix with the same (possibly parallel)
    /// kernel the batch engine used.
    fn push_window(matrix: &mut CostMatrix, refs: &[&TimeSeries], len: usize) -> crate::Result<()> {
        #[cfg(feature = "parallel")]
        return matrix
            .par_push_columns(refs, 0, len)
            .map_err(SimError::Core);
        #[cfg(not(feature = "parallel"))]
        return matrix.push_columns(refs, 0, len).map_err(SimError::Core);
    }

    /// Builds a fresh matrix over `universe` VMs — from the previous
    /// period's windows when they exist (zero-padded for VMs that
    /// postdate them), else empty (period 0: all pairs neutral).
    fn rebuild_matrix(&mut self, universe: usize) -> crate::Result<()> {
        let mut matrix = CostMatrix::new(universe, self.cfg.reference).map_err(SimError::Core)?;
        if let Some(windows) = &self.prev_window {
            if !windows.is_empty() {
                let len = windows[0].len();
                let zero = TimeSeries::constant(self.cfg.sample_dt_s, len, 0.0)
                    .map_err(SimError::Trace)?;
                let mut refs: Vec<&TimeSeries> = windows.iter().collect();
                while refs.len() < universe {
                    refs.push(&zero);
                }
                refs.truncate(universe);
                Self::push_window(&mut matrix, &refs, len)?;
            }
        }
        self.matrix = Some(matrix);
        Ok(())
    }

    /// The full policy re-pack of the live VM set (plus the PCP cluster
    /// count when applicable) — the batch ALLOCATE pass. Runs through
    /// [`AllocationPolicy::place_with_margins`] with the live per-class
    /// overcommit margins (all zeros — and hence the policy's plain
    /// `place`, bit for bit — when overcommit is off or the controller
    /// is degraded).
    fn place_live(&self, vms: &[VmDescriptor]) -> crate::Result<(Placement, Option<usize>)> {
        let fleet = &self.cfg.server_fleet;
        let margins = self.batch_margins();
        let matrix = self
            .matrix
            .as_ref()
            .expect("matrix is built before placement");
        match self.cfg.policy {
            Policy::Bfd => Ok((
                BfdPolicy
                    .place_with_margins(vms, matrix, fleet, &margins)
                    .map_err(map_core)?,
                None,
            )),
            Policy::Ffd => Ok((
                FfdPolicy
                    .place_with_margins(vms, matrix, fleet, &margins)
                    .map_err(map_core)?,
                None,
            )),
            Policy::Proposed(config) => {
                let policy = ProposedPolicy::new(config).map_err(SimError::Core)?;
                Ok((
                    policy
                        .place_with_margins(vms, matrix, fleet, &margins)
                        .map_err(map_core)?,
                    None,
                ))
            }
            Policy::SuperVm { min_pair_cost } => {
                let policy = SuperVmPolicy::new(min_pair_cost).map_err(SimError::Core)?;
                Ok((
                    policy
                        .place_with_margins(vms, matrix, fleet, &margins)
                        .map_err(map_core)?,
                    None,
                ))
            }
            Policy::Pcp {
                envelope_percentile,
                affinity_threshold,
            } => {
                let windows = match &self.prev_window {
                    // No history yet — including a previous period that
                    // held zero VMs: a single degenerate cluster, i.e.
                    // BFD behaviour.
                    Some(w) if !w.is_empty() => w,
                    _ => {
                        return Ok((
                            BfdPolicy
                                .place_with_margins(vms, matrix, fleet, &margins)
                                .map_err(map_core)?,
                            Some(1),
                        ))
                    }
                };
                // VMs that postdate the window cluster from an all-zero
                // envelope.
                let len = windows[0].len();
                let zero = TimeSeries::constant(self.cfg.sample_dt_s, len, 0.0)
                    .map_err(SimError::Trace)?;
                let mut refs: Vec<&TimeSeries> = windows.iter().collect();
                while refs.len() < self.slots.len() {
                    refs.push(&zero);
                }
                let pcp = PcpPolicy::from_traces(&refs, envelope_percentile, affinity_threshold)
                    .map_err(SimError::Core)?;
                let clusters = pcp.cluster_count();
                Ok((
                    pcp.place_with_margins(vms, matrix, fleet, &margins)
                        .map_err(map_core)?,
                    Some(clusters),
                ))
            }
        }
    }

    /// The UPDATE + ALLOCATE pass at a period boundary: predict live
    /// demands, refresh the matrix dimension, re-pack (or, under a
    /// pure [`RepackTrigger::Fragmentation`] schedule, keep the
    /// standing placement), count migrations, and plan every server's
    /// static frequency.
    fn start_period(&mut self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        let universe = self.slots.len();
        self.period_start = self.clock;
        self.period_ratio_floor = 0.0;
        // The boundary starts fresh violation counters; a guard armed
        // by the previous period's last samples has nothing valid to
        // threshold (the keep-path's capacity check covers the drift).
        self.qos_armed = false;

        // ---- UPDATE: predicted descriptors (last-value predictor with
        // the configured default before the first observation).
        self.dense_vms.clear();
        let mut live_vms = Vec::new();
        for (id, slot) in self.slots.iter().enumerate() {
            let descriptor = match slot {
                Some(s) if s.live => {
                    let demand = s.last_peak.unwrap_or(self.cfg.default_demand).max(0.0);
                    let off = s.last_off.unwrap_or(demand * 0.9).clamp(0.0, demand);
                    let d = VmDescriptor::new(id, demand).with_off_peak(off);
                    live_vms.push(d);
                    d
                }
                _ => VmDescriptor::new(id, 0.0).with_off_peak(0.0),
            };
            self.dense_vms.push(descriptor);
        }
        if universe > 0 {
            let stale = self.matrix.as_ref().is_none_or(|m| m.len() != universe);
            if stale {
                self.rebuild_matrix(universe)?;
            }
        }

        // A fragmentation-only schedule keeps the standing placement
        // across boundaries once one exists; everything else (and the
        // very first placement) runs the batch ALLOCATE pass. Degraded
        // mode also keeps: the health-blind batch pass would pack onto
        // failed slots (and lose their health state in the rebuild),
        // so a degraded boundary works incrementally instead — evict
        // the departed, re-admit the pending, consolidate later.
        let degraded = self.degraded();
        let keep = (!self.cfg.repack_trigger.periodic_repacks() || degraded)
            && (self.placement.servers().iter().any(|m| !m.is_empty())
                || (degraded && self.placement.server_count() > 0));
        if keep {
            self.keep_placement_boundary(sink)?;
            return Ok(());
        }

        // ---- ALLOCATE.
        let servers_before = self.placement.active_server_count();
        let (placement, pcp_clusters) = if live_vms.is_empty() {
            let clusters = matches!(self.cfg.policy, Policy::Pcp { .. }).then_some(1);
            (Placement::from_servers(vec![]), clusters)
        } else {
            self.place_live(&live_vms)?
        };
        self.pcp_clusters = pcp_clusters;
        let ran_allocate = !live_vms.is_empty();

        let migrations = self.install_placement(placement, sink)?;
        // A fresh period starts fresh dynamic-governor windows (the
        // off-cycle re-pack path preserves them instead).
        self.window_max_vm = vec![0.0; universe];
        self.period_migrations = migrations;
        self.period_class_joules_start = self.class_energy.iter().map(|m| m.joules()).collect();
        // The batch pass healed whatever fragmentation was pending.
        self.repack_armed = false;
        if ran_allocate {
            sink.on_repack(&RepackEvent {
                sample: self.clock,
                period: self.period,
                reason: RepackReason::Periodic,
                servers_before,
                servers_after: self.placement.active_server_count(),
                migrations,
                slack_after: self.current_slack(),
            });
        }
        Ok(())
    }

    /// Swaps in a freshly packed placement mid-stream: counts
    /// migrations against the live assignment (attributed to the
    /// destination server's class), rebuilds the per-server aggregate/
    /// capacity/violation tables and plans every server's static
    /// frequency. Returns the migration count.
    fn install_placement(
        &mut self,
        placement: Placement,
        sink: &mut dyn MetricSink,
    ) -> crate::Result<usize> {
        let universe = self.slots.len();
        let assignment = placement.assignment(universe);
        let mut migrations = 0usize;
        let prev = std::mem::take(&mut self.assignment);
        for (id, &now) in assignment.iter().enumerate() {
            let before = prev.get(id).copied().flatten();
            if let (Some(b), Some(n)) = (before, now) {
                if b != n {
                    migrations += 1;
                    self.class_migrations[placement.classes()[n]] += 1;
                    sink.on_migration(self.period, id, b, n);
                }
            }
        }
        self.assignment = assignment;

        // Rebuild per-server state: cost aggregates, class/capacity
        // tables, dynamic-governor windows.
        let matrix = self.matrix.as_ref();
        self.classes_of = placement.classes().to_vec();
        self.cores_of = self
            .classes_of
            .iter()
            .map(|&c| self.cfg.server_fleet.classes()[c].cores())
            .collect();
        self.aggregates = placement
            .servers()
            .iter()
            .map(|members| {
                let mut agg = ServerCostAggregate::new();
                if let Some(m) = matrix {
                    for &id in members {
                        agg.push(id, self.dense_vms[id].demand, m);
                    }
                }
                agg
            })
            .collect();
        let bins = placement.server_count();
        // Per-bin windows cannot survive a reshuffle; the per-VM
        // maxima (`window_max_vm`) are bin-independent, so callers
        // decide whether to reset or carry them.
        self.window_max_agg = vec![0.0; bins];
        self.server_violations = vec![0; bins];

        // Static frequency per active server, planned against its own
        // class ladder and capacity.
        let server_demands = placement.server_demands(&self.dense_vms);
        let mut freq_idx = Vec::with_capacity(bins);
        for (s, members) in placement.servers().iter().enumerate() {
            let class = self.classes_of[s];
            let total = server_demands[s];
            let f = if self.cfg.policy.correlation_aware_frequency() {
                let m = matrix.expect("live servers imply a matrix");
                let cost = server_cost_of(members, &self.dense_vms, m).max(1.0);
                self.planner
                    .static_level_correlation_aware(class, total, cost)
                    .map_err(SimError::Core)?
            } else {
                self.planner
                    .static_level_worst_case(class, total)
                    .map_err(SimError::Core)?
            };
            let ladder = self.cfg.server_fleet.classes()[class].ladder();
            freq_idx.push(ladder.index_of(f).expect("planner returns ladder levels"));
        }
        self.freq_idx = freq_idx;
        // A full batch re-pack renumbers the server slots wholesale,
        // which only ever happens outside degraded mode (degraded
        // boundaries keep, and degraded suspends the fragmentation
        // re-pack) — so every slot of the fresh placement is healthy.
        debug_assert!(!self.health.iter().any(|h| h.is_failed()));
        self.health = vec![ServerHealth::Healthy; bins];
        // The renumbering also voids any per-slot overcommit holds: the
        // trimmed server a hold pointed at no longer exists.
        self.overcommit_hold = vec![0; bins];
        self.placement = placement;
        Ok(migrations)
    }

    /// The period boundary under a fragmentation-only schedule: the
    /// standing placement is kept (members that departed between
    /// periods are evicted first), its aggregates and frequency plans
    /// are refreshed against the new matrix and predictions, and VMs
    /// that arrived between periods are admitted incrementally. No
    /// migrations happen, and [`PeriodRecord::pcp_clusters`] stays
    /// `None` (no clustering ran).
    fn keep_placement_boundary(&mut self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        let universe = self.slots.len();

        // Members that departed between periods leave their (kept)
        // slots now; like any eviction this arms the fragmentation
        // check.
        let mut evicted_any = false;
        for id in 0..universe {
            let live = self.slots[id].as_ref().is_some_and(|s| s.live);
            if !live && self.placement.server_of(id).is_some() {
                self.placement.evict(id).map_err(SimError::Core)?;
                evicted_any = true;
            }
        }
        self.assignment = self.placement.assignment(universe);
        self.period_migrations = 0;
        self.pcp_clusters = None;

        // Refresh per-server state against the new matrix/predictions.
        let matrix = self.matrix.as_ref();
        let aggregates: Vec<ServerCostAggregate> = self
            .placement
            .servers()
            .iter()
            .map(|members| {
                let mut agg = ServerCostAggregate::new();
                if let Some(m) = matrix {
                    for &id in members {
                        agg.push(id, self.dense_vms[id].demand, m);
                    }
                }
                agg
            })
            .collect();
        self.aggregates = aggregates;
        let bins = self.placement.server_count();
        self.window_max_agg = vec![0.0; bins];
        self.window_max_vm = vec![0.0; universe];
        // The completed period's per-server violation counters are the
        // guard's boundary evidence; capture them across the reset.
        let prior_violations = std::mem::replace(&mut self.server_violations, vec![0; bins]);
        self.period_class_joules_start = self.class_energy.iter().map(|m| m.joules()).collect();
        for s in 0..bins {
            self.replan_bin(s)?;
        }

        // The QoS guard's boundary capacity check. A kept server is
        // force-repacked only on *evidence*: its violation ratio over
        // the completed period exceeded the guard's threshold (it
        // ended the period un-healed — e.g. crossed too late for the
        // mid-period guard to act) AND the refreshed predictions say
        // it is overcommitted going into the next one. Sub-threshold
        // violators keep their packing deliberately: predicted
        // overcommit whose coincident peaks stay within the SLA budget
        // is exactly the correlation gap the paper's Eqn (1) packing
        // exploits, and splitting on it would forfeit the
        // fragmentation schedule's energy win. The fix is surgical:
        // the largest members are trimmed off (and re-admitted below)
        // until the remainder fits the capacity, moving the minimum of
        // VMs.
        //
        // Degraded mode suspends the deliberate overcommit entirely:
        // with capacity already lost to failures, *any* predicted
        // overcommit is trimmed at the boundary — no breach evidence
        // required, guard configured or not. The correlation gap is a
        // bet the shrunken fleet can no longer cover.
        let degraded = self.degraded();
        let mut forced: Vec<(usize, usize)> = Vec::new();
        let mut over_servers = 0usize;
        let servers_before = self.placement.active_server_count();
        self.overcommit_hold.resize(bins, 0);
        if self.cfg.qos_guard.is_some() || degraded {
            for s in 0..bins {
                let members = self.placement.servers()[s].clone();
                let violations = prior_violations.get(s).copied().unwrap_or(0);
                let evidence = degraded
                    || self
                        .cfg
                        .qos_guard
                        .is_some_and(|g| g.exceeded(violations, self.cfg.period_samples));
                if members.is_empty() || !evidence {
                    continue;
                }
                let mut load: f64 = members.iter().map(|&id| self.dense_vms[id].demand).sum();
                if load <= self.cores_of[s] + VIOLATION_EPS {
                    continue;
                }
                over_servers += 1;
                // A trimmed server sits out deliberate overcommit for
                // the trim period and the next: re-admitting the same
                // margin it just breached would ping-pong VMs between
                // the trim loop and the admission gate every boundary.
                if self.overcommit_ctl.is_some() {
                    self.overcommit_hold[s] = self.period + 2;
                }
                let mut by_demand = members;
                by_demand.sort_by(|&a, &b| {
                    self.dense_vms[b]
                        .demand
                        .partial_cmp(&self.dense_vms[a].demand)
                        .expect("finite demands")
                        .then(a.cmp(&b))
                });
                for &m in &by_demand {
                    if load <= self.cores_of[s] + VIOLATION_EPS {
                        break;
                    }
                    self.placement.evict(m).map_err(SimError::Core)?;
                    if let Some(a) = self.assignment.get_mut(m) {
                        *a = None;
                    }
                    load -= self.dense_vms[m].demand;
                    forced.push((m, s));
                }
                let matrix = self.matrix.as_ref().expect("kept servers imply a matrix");
                let mut agg = ServerCostAggregate::new();
                for &m in &self.placement.servers()[s] {
                    agg.push(m, self.dense_vms[m].demand, matrix);
                }
                self.aggregates[s] = agg;
                self.replan_bin(s)?;
            }
        }
        if over_servers > 0 {
            // Re-admit the displaced members in id order through the
            // policy's single-VM rule (origin excluded — re-admitting
            // there would undo the trim); a changed server is a
            // migration, attributed like any boundary migration.
            forced.sort_unstable();
            let mut migrations = 0usize;
            for &(id, old) in &forced {
                let vm = self.dense_vms[id];
                match self.admit_slot_excluding(vm, Some(old)) {
                    Ok(server) => {
                        if server != old {
                            migrations += 1;
                            self.class_migrations[self.placement.classes()[server]] += 1;
                            sink.on_migration(self.period, id, old, server);
                        }
                    }
                    Err(SimError::InsufficientServers { .. }) if degraded => {
                        // The trimmed VM has nowhere to go on the
                        // shrunken fleet: queue it like any other
                        // displaced VM.
                        self.defer(id)?;
                    }
                    Err(e) => return Err(e),
                }
            }
            self.period_migrations += migrations;
            sink.on_repack(&RepackEvent {
                sample: self.clock,
                period: self.period,
                reason: RepackReason::Overcommit {
                    servers: over_servers,
                },
                servers_before,
                servers_after: self.placement.active_server_count(),
                migrations,
                slack_after: self.current_slack(),
            });
        }

        // VMs that arrived between periods join incrementally, in id
        // order, with their predicted descriptors — and so do queued
        // VMs (live but unplaced), which makes the boundary a natural
        // deferred-queue retry; successes are pruned from the queue by
        // the caller.
        for id in 0..universe {
            let live = self.slots[id].as_ref().is_some_and(|s| s.live);
            if live && self.placement.server_of(id).is_none() {
                let vm = self.dense_vms[id];
                if degraded {
                    match self.admit_live(vm, sink) {
                        Err(SimError::InsufficientServers { .. }) => self.defer(id)?,
                        other => other?,
                    }
                } else {
                    self.admit_live(vm, sink)?;
                }
            }
        }
        if evicted_any && self.cfg.repack_trigger.slack().is_some() {
            self.repack_armed = true;
        }
        Ok(())
    }

    /// Evaluates an armed [`QosGuard`]: when the running period's
    /// observed worst per-server violation ratio exceeds the
    /// threshold, fire the off-cycle QoS re-pack
    /// ([`RepackReason::QosGuard`]). Returns whether one fired.
    ///
    /// The re-pack is deliberately *surgical*: only servers whose own
    /// ratio breached the threshold are touched, and each loses
    /// exactly its **hotspot member** — the one with the largest peak
    /// observed this period — which is re-admitted onto another server
    /// through the policy's single-VM rule (origin excluded; the
    /// correlation-aware rule lands it with anti-correlated tenants).
    /// The move uses the *standing* predictions, so quiet servers keep
    /// their packing and a sub-threshold overcommitted fleet stays
    /// consolidated: a full honest re-pack here would convert every
    /// server to worst-case provisioning and forfeit exactly the
    /// correlation-gap energy win the placement-keeping schedule
    /// exists to hold on to. If violations persist, the ratio
    /// re-crosses the threshold one heal-interval later and the next
    /// hotspot moves — gradual, self-limiting redistribution, with the
    /// boundary capacity check as the stronger periodic backstop.
    fn maybe_qos_repack(&mut self, sink: &mut dyn MetricSink) -> crate::Result<bool> {
        if !self.qos_armed {
            return Ok(false);
        }
        self.qos_armed = false;
        let Some(guard) = self.cfg.qos_guard else {
            return Ok(false);
        };
        let worst = self.period_worst_violations();
        if !guard.exceeded(worst, self.cfg.period_samples) || self.live_vms() == 0 {
            return Ok(false);
        }

        let bins = self.placement.server_count();
        let servers_before = self.placement.active_server_count();
        let mut forced: Vec<(usize, usize)> = Vec::new();
        for s in 0..bins {
            let violations = self.server_violations[s];
            let members = self.placement.servers()[s].clone();
            // A lone member would be alone wherever it goes — moving
            // it buys nothing, so lone-tenant breaches neither fire
            // nor reset (they are excluded from the predicate above).
            if members.len() < 2 || !guard.exceeded(violations, self.cfg.period_samples) {
                continue;
            }
            // The healed server's counter cannot carry on (its load is
            // about to change): fold its ratio into the period floor
            // so the record keeps the damage, and reset it so the
            // guard does not re-fire on stale evidence.
            let ratio = violations as f64 / self.cfg.period_samples as f64;
            self.period_ratio_floor = self.period_ratio_floor.max(ratio);
            self.server_violations[s] = 0;
            // The hotspot: the member with the largest reference peak
            // actually observed this period.
            let mut hotspot = members[0];
            let mut hotspot_peak = f64::NEG_INFINITY;
            for &m in &members {
                let peak = match self.window.get(m).filter(|w| !w.is_empty()) {
                    Some(win) => self.cfg.reference.of(win).map_err(SimError::Trace)?,
                    None => 0.0,
                };
                if peak > hotspot_peak {
                    hotspot_peak = peak;
                    hotspot = m;
                }
            }
            self.placement.evict(hotspot).map_err(SimError::Core)?;
            if let Some(a) = self.assignment.get_mut(hotspot) {
                *a = None;
            }
            forced.push((hotspot, s));
            let matrix = self.matrix.as_ref().expect("violations imply a matrix");
            let mut agg = ServerCostAggregate::new();
            for &m in &self.placement.servers()[s] {
                agg.push(m, self.dense_vms[m].demand, matrix);
            }
            self.aggregates[s] = agg;
            self.replan_bin(s)?;
        }

        // Re-admit the displaced hotspots in id order through the
        // policy's single-VM rule, never back onto their origin.
        forced.sort_unstable();
        let mut migrations = 0usize;
        for &(id, old) in &forced {
            let vm = self.dense_vms[id];
            let server = self.admit_slot_excluding(vm, Some(old))?;
            if server != old {
                migrations += 1;
                self.class_migrations[self.placement.classes()[server]] += 1;
                sink.on_migration(self.period, id, old, server);
            }
        }
        self.period_migrations += migrations;
        self.offcycle_repacks += 1;
        sink.on_repack(&RepackEvent {
            sample: self.clock,
            period: self.period,
            reason: RepackReason::QosGuard { violations: worst },
            servers_before,
            servers_after: self.placement.active_server_count(),
            migrations,
            slack_after: self.current_slack(),
        });
        Ok(true)
    }

    /// A fragmentation-fired full re-pack between period boundaries;
    /// the [`SlackController`] observes its realized outcome.
    fn offcycle_repack(
        &mut self,
        estimate: usize,
        active: usize,
        sink: &mut dyn MetricSink,
    ) -> crate::Result<()> {
        self.midperiod_repack(RepackReason::Fragmentation { estimate, active }, sink)
    }

    /// A full re-pack of the live VM set between period boundaries
    /// (fragmentation- or QoS-fired): re-packs with the batch policy
    /// against the current matrix, folds the obsoleted per-server
    /// violation counters into the period's floor, and emits
    /// [`MetricSink::on_repack`].
    fn midperiod_repack(
        &mut self,
        reason: RepackReason,
        sink: &mut dyn MetricSink,
    ) -> crate::Result<()> {
        let universe = self.slots.len();
        let live_vms: Vec<VmDescriptor> = (0..universe)
            .filter(|&id| self.slots[id].as_ref().is_some_and(|s| s.live))
            .map(|id| self.dense_vms[id])
            .collect();
        if live_vms.is_empty() {
            return Ok(());
        }
        // Mid-period arrivals may postdate the period matrix; the
        // batch pass validates ids against it, so refresh the
        // dimension first (new ids pair neutrally, as at a boundary).
        if self.matrix.as_ref().is_none_or(|m| m.len() != universe) {
            self.rebuild_matrix(universe)?;
        }
        let servers_before = self.placement.active_server_count();
        let (placement, pcp_clusters) = self.place_live(&live_vms)?;

        // The re-pack reshuffles the bins, so the per-server violation
        // counters cannot carry across it — fold their worst ratio
        // into the period's floor before they are reset.
        let floor = self
            .server_violations
            .iter()
            .map(|&v| v as f64 / self.cfg.period_samples as f64)
            .fold(0.0, f64::max);
        self.period_ratio_floor = self.period_ratio_floor.max(floor);

        let migrations = self.install_placement(placement, sink)?;
        // The per-VM window maxima are bin-independent: carry them
        // across the reshuffle so a mid-interval dynamic replan still
        // sees the whole interval's peaks, and seed each new bin's
        // aggregate window with its members' per-VM maxima (Σ max ≥
        // max Σ — a conservative stand-in until fresh samples land).
        self.window_max_vm.resize(universe, 0.0);
        for (s, members) in self.placement.servers().iter().enumerate() {
            self.window_max_agg[s] = members.iter().map(|&v| self.window_max_vm[v]).sum();
        }
        self.period_migrations += migrations;
        if pcp_clusters.is_some() {
            self.pcp_clusters = pcp_clusters;
        }
        self.offcycle_repacks += 1;
        let servers_after = self.placement.active_server_count();
        if let (RepackReason::Fragmentation { .. }, Some(ctl)) = (reason, self.slack_ctl.as_mut()) {
            // Feed the realized outcome back into the adaptive slack:
            // freed servers are the energy win, migrations the price.
            ctl.observe(servers_before.saturating_sub(servers_after), migrations);
        }
        sink.on_repack(&RepackEvent {
            sample: self.clock,
            period: self.period,
            reason,
            servers_before,
            servers_after,
            migrations,
            slack_after: self.current_slack(),
        });
        Ok(())
    }

    /// Replays the current sample: per-server aggregation, dynamic
    /// DVFS, violations, energy and histograms.
    fn replay_tick(&mut self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        let universe = self.slots.len();
        let k = self.clock;
        let k_in_period = k - self.period_start;
        let elapsed = k_in_period;
        while self.window.len() < universe {
            let mut w = Vec::with_capacity(self.cfg.period_samples);
            w.resize(elapsed, 0.0);
            self.window.push(w);
        }
        self.sample_buf.resize(universe, 0.0);
        for id in 0..universe {
            let v = sample_of(&self.slots[id], k);
            self.sample_buf[id] = v;
            self.window[id].push(v);
        }

        let dt = self.cfg.sample_dt_s;
        for s in 0..self.placement.server_count() {
            let members: &[usize] = &self.placement.servers()[s];
            if members.is_empty() {
                // A fully vacated server is powered off until re-used.
                continue;
            }
            if self.health.get(s).is_some_and(|h| h.is_failed()) {
                // Evacuation empties failed servers, so this arm is
                // normally unreachable — but a failed server draws no
                // power and can violate nothing, whatever its members
                // claim.
                continue;
            }
            let class = self.classes_of[s];
            let capacity = self.cores_of[s];
            let ladder = self.cfg.server_fleet.classes()[class].ladder();
            let agg: f64 = members.iter().map(|&v| self.sample_buf[v]).sum();

            if let DvfsMode::Dynamic { interval_samples } = self.cfg.dvfs_mode {
                if k_in_period > 0 && k_in_period.is_multiple_of(interval_samples) {
                    // Correlation-aware governors trust the measured
                    // *aggregate* peak; correlation-blind ones must
                    // assume per-VM peaks can coincide (Σ max ≥ max Σ).
                    let recent = if self.cfg.policy.correlation_aware_frequency() {
                        self.window_max_agg[s]
                    } else {
                        members.iter().map(|&v| self.window_max_vm[v]).sum()
                    };
                    let f = self
                        .planner
                        .dynamic_level(class, recent, self.cfg.dynamic_headroom)
                        .map_err(SimError::Core)?;
                    self.freq_idx[s] = ladder.index_of(f).expect("planner returns ladder levels");
                    self.window_max_agg[s] = 0.0;
                    for &v in members {
                        self.window_max_vm[v] = 0.0;
                    }
                }
                self.window_max_agg[s] = self.window_max_agg[s].max(agg);
                for &v in members {
                    self.window_max_vm[v] = self.window_max_vm[v].max(self.sample_buf[v]);
                }
            }

            let f = ladder.get(self.freq_idx[s]).expect("index within ladder");
            let eff_capacity = capacity * f.ratio_to(ladder.max());
            if agg > eff_capacity + VIOLATION_EPS {
                self.server_violations[s] += 1;
                self.violation_instances += 1;
                self.class_violations[class] += 1;
                // A violation is what degrades QoS: arm the guard
                // check for the next tick (the period ratio cannot
                // rise between violations).
                if self.cfg.qos_guard.is_some() {
                    self.qos_armed = true;
                }
                sink.on_violation(&ViolationEvent {
                    sample: k,
                    period: self.period,
                    server: s,
                    class,
                    demand: agg,
                    capacity: eff_capacity,
                });
            }
            let u = (agg / eff_capacity).clamp(0.0, 1.0);
            let watts = self.cfg.server_fleet.classes()[class]
                .power_model()
                .power(u, f)
                .map_err(SimError::Power)?;
            self.class_energy[class].add(watts, dt);
            self.freq_histogram[s][self.union_level[class][self.freq_idx[s]]] += 1;
            self.class_freq_histogram[class][self.freq_idx[s]] += 1;
        }
        Ok(())
    }

    /// Observes the completed period for the next UPDATE, rebuilds the
    /// matrix from the period window, and emits the period's metrics.
    fn end_period(&mut self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        let universe = self.slots.len();

        // ---- Observe this period for the next UPDATE.
        for id in 0..universe {
            if let Some(slot) = &mut self.slots[id] {
                if slot.live {
                    let win = &self.window[id];
                    let peak = self.cfg.reference.of(win).map_err(SimError::Trace)?;
                    slot.last_peak = Some(peak);
                    let off = cavm_trace::percentile(win, 90.0).map_err(SimError::Trace)?;
                    slot.last_off = Some(off);
                }
            }
        }

        // ---- Window replay into the next period's matrix.
        if universe > 0 {
            let mut windows = Vec::with_capacity(universe);
            for values in self.window.drain(..) {
                windows
                    .push(TimeSeries::new(self.cfg.sample_dt_s, values).map_err(SimError::Trace)?);
            }
            let mut matrix =
                CostMatrix::new(universe, self.cfg.reference).map_err(SimError::Core)?;
            let refs: Vec<&TimeSeries> = windows.iter().collect();
            Self::push_window(&mut matrix, &refs, self.cfg.period_samples)?;
            self.matrix = Some(matrix);
            self.prev_window = Some(windows);
        } else {
            self.window.clear();
            self.prev_window = Some(Vec::new());
        }

        // ---- Per-class peaks and the period record.
        for (class, peak) in self.class_peak_servers.iter_mut().enumerate() {
            let used = self
                .placement
                .servers()
                .iter()
                .zip(&self.classes_of)
                .filter(|(members, &c)| !members.is_empty() && c == class)
                .count();
            *peak = (*peak).max(used);
        }
        // Counters discarded by an off-cycle re-pack contribute
        // through the folded floor (0 when no re-pack happened).
        let max_ratio = self
            .server_violations
            .iter()
            .map(|&v| v as f64 / self.cfg.period_samples as f64)
            .fold(self.period_ratio_floor, f64::max);
        let record = PeriodRecord {
            period: self.period,
            servers_used: self.placement.active_server_count(),
            max_violation_ratio: max_ratio,
            migrations: self.period_migrations,
            pcp_clusters: self.pcp_clusters,
        };
        sink.on_period(&record);
        for (c, meter) in self.class_energy.iter().enumerate() {
            sink.on_class_energy(
                self.period,
                c,
                self.cfg.server_fleet.classes()[c].name(),
                meter.joules() - self.period_class_joules_start[c],
            );
        }
        // ---- Overcommit margin feedback. Each class's controller
        // walks on the worst violation ratio its servers produced this
        // period, measured against the guard threshold. Degraded
        // periods are skipped: failure-inflated violations say nothing
        // about whether the correlation-gap bet was sound, and the
        // margins are already suspended while degraded.
        if !self.degraded() && self.cfg.period_samples > 0 {
            if let Some(ctls) = self.overcommit_ctl.as_mut() {
                let guard = self
                    .cfg
                    .qos_guard
                    .expect("validate(): overcommit requires a qos guard")
                    .violation_ratio;
                let mut worst = vec![self.period_ratio_floor; ctls.len()];
                for (s, &v) in self.server_violations.iter().enumerate() {
                    let ratio = v as f64 / self.cfg.period_samples as f64;
                    if let Some(&class) = self.classes_of.get(s) {
                        if ratio > worst[class] {
                            worst[class] = ratio;
                        }
                    }
                }
                for (class, ctl) in ctls.iter_mut().enumerate() {
                    ctl.observe_period(worst[class], guard);
                }
            }
        }
        self.period_records.push(record);
        self.period += 1;
        self.in_period = false;
        Ok(())
    }

    // ---- incremental admission --------------------------------------------

    /// The next fill-order server slot not consumed by the live
    /// placement (empty-but-reserved slots count as consumed).
    fn next_open_slot(&self) -> crate::Result<(usize, f64)> {
        let fleet = &self.cfg.server_fleet;
        let mut used = vec![0usize; fleet.len()];
        for &c in self.placement.classes() {
            used[c] += 1;
        }
        for &class in fleet.fill_order() {
            if used[class] < fleet.classes()[class].count() {
                return Ok((class, fleet.classes()[class].cores()));
            }
        }
        Err(map_core(CoreError::FleetExhausted {
            slots: self.total_slots,
            unallocated: 1,
        }))
    }

    /// Re-plans one server's static frequency level from its current
    /// members (after an admit or evict).
    fn replan_bin(&mut self, s: usize) -> crate::Result<()> {
        let members: &[usize] = &self.placement.servers()[s];
        if members.is_empty() {
            return Ok(());
        }
        let class = self.classes_of[s];
        let total: f64 = members.iter().map(|&id| self.dense_vms[id].demand).sum();
        let f = if self.cfg.policy.correlation_aware_frequency() {
            let matrix = self
                .matrix
                .as_ref()
                .expect("live servers imply a period matrix");
            let cost = server_cost_of(members, &self.dense_vms, matrix).max(1.0);
            self.planner
                .static_level_correlation_aware(class, total, cost)
                .map_err(SimError::Core)?
        } else {
            self.planner
                .static_level_worst_case(class, total)
                .map_err(SimError::Core)?
        };
        let ladder = self.cfg.server_fleet.classes()[class].ladder();
        self.freq_idx[s] = ladder.index_of(f).expect("planner returns ladder levels");
        Ok(())
    }

    /// Samples until the last member of `members` departs: `Some(k)`
    /// when every member's lease end is known, `None` when any member
    /// is open-ended — or when the server is empty (already drained,
    /// hence bias-neutral).
    fn drain_of(&self, members: &[usize]) -> Option<usize> {
        // An already-vacated (powered-off but reserved) slot is
        // drained: re-using it extends nothing, so it stays neutral
        // (`None`) and the no-lease-info path remains bit-identical
        // to the lease-blind rules.
        if members.is_empty() {
            return None;
        }
        let mut drain = 0usize;
        for &m in members {
            match self
                .slots
                .get(m)
                .and_then(|s| s.as_ref())
                .and_then(|s| s.lease_end)
            {
                None => return None,
                Some(end) => drain = drain.max(end.saturating_sub(self.clock)),
            }
        }
        Some(drain)
    }

    /// Admits the (already registered, live) VM described by `vm` into
    /// the live placement through the policy's single-VM entry point —
    /// no re-pack. The arriving VM's remaining lease and each server's
    /// drain horizon feed the lease-aware bias. Counts as an online
    /// admission and emits [`MetricSink::on_admit`]; the boundary
    /// capacity check uses [`Self::admit_slot`] directly instead (a
    /// displaced member is a migration, not an arrival).
    fn admit_live(&mut self, vm: VmDescriptor, sink: &mut dyn MetricSink) -> crate::Result<()> {
        let id = vm.id;
        let server = self.admit_slot(vm)?;
        self.online_admissions += 1;
        sink.on_admit(self.clock, id, server);
        Ok(())
    }

    /// The placement half of an incremental admission: routes `vm`
    /// through the policy's `place_one` rule (opening a fresh
    /// fill-order server when nothing fits), pushes it into the chosen
    /// server's aggregate and re-plans that server's frequency.
    /// Returns the chosen server.
    fn admit_slot(&mut self, vm: VmDescriptor) -> crate::Result<usize> {
        self.admit_slot_excluding(vm, None)
    }

    /// [`Self::admit_slot`], with an optional server the rule may not
    /// pick — the guard's healing moves exclude the origin server, or
    /// re-admission would happily undo the eviction it just made.
    fn admit_slot_excluding(
        &mut self,
        vm: VmDescriptor,
        exclude: Option<usize>,
    ) -> crate::Result<usize> {
        let id = vm.id;
        let universe = self.slots.len();
        self.window_max_vm.resize(universe, 0.0);
        if self.assignment.len() < universe {
            self.assignment.resize(universe, None);
        }
        while self.dense_vms.len() < universe {
            let fresh = self.dense_vms.len();
            self.dense_vms
                .push(VmDescriptor::new(fresh, 0.0).with_off_peak(0.0));
        }
        self.dense_vms[id] = vm;
        if self.matrix.is_none() {
            self.rebuild_matrix(universe)?;
        }
        let lease = self.slots[id]
            .as_ref()
            .and_then(|s| s.lease_end)
            .map(|end| end.saturating_sub(self.clock));

        // Healing moves (exclude set: guard splits, boundary trims,
        // evacuations) place at plain capacity — margin 0. A VM being
        // moved *off* an overloaded server must not land on another
        // one's overcommit bet.
        let healing = exclude.is_some();
        let choice = {
            let matrix = self.matrix.as_ref().expect("ensured above");
            let candidates: Vec<usize> = (0..self.placement.server_count())
                .filter(|&s| exclude != Some(s))
                .collect();
            let drains: Vec<Option<usize>> = candidates
                .iter()
                .map(|&s| self.drain_of(&self.placement.servers()[s]))
                .collect();
            let views: Vec<OpenServer<'_>> = candidates
                .iter()
                .zip(&drains)
                .map(|(&s, &drain_samples)| OpenServer {
                    class: self.classes_of[s],
                    cores: self.cores_of[s],
                    watts_per_core: self.class_wpc[self.classes_of[s]],
                    drain_samples,
                    agg: &self.aggregates[s],
                    healthy: !self.health.get(s).is_some_and(|h| h.is_failed()),
                    overcommit_margin: if healing { 0.0 } else { self.margin_of(s) },
                })
                .collect();
            admit_choice(self.cfg.policy, &vm, lease, &views, matrix).map(|i| candidates[i])
        };
        let server = match choice {
            Some(s) => s,
            None => {
                let (class, cores) = self.next_open_slot()?;
                let s = self.placement.open_server(class);
                self.classes_of.push(class);
                self.cores_of.push(cores);
                self.aggregates.push(ServerCostAggregate::new());
                self.freq_idx.push(0);
                self.window_max_agg.push(0.0);
                self.server_violations.push(0);
                self.health.resize(s, ServerHealth::Healthy);
                self.health.push(ServerHealth::Healthy);
                self.overcommit_hold.resize(s, 0);
                self.overcommit_hold.push(0);
                s
            }
        };
        self.placement.admit(id, server).map_err(SimError::Core)?;
        {
            let matrix = self.matrix.as_ref().expect("ensured above");
            self.aggregates[server].push(id, vm.demand, matrix);
        }
        self.assignment[id] = Some(server);
        self.replan_bin(server)?;
        Ok(server)
    }
}

/// A what-if probe: a **fork** of a live session an operator can run
/// hypotheticals on without perturbing the original.
///
/// Opened with [`DatacenterController::what_if`] (or cell-wise through
/// [`ShardedController::what_if_repack`](crate::ShardedController::what_if_repack)).
/// The canonical question — "what would an off-cycle re-pack buy me
/// right now?" — is [`repack`](Self::repack), which runs the full
/// batch consolidation pass on the fork and returns a [`WhatIfDelta`].
/// Arbitrary event suffixes ("what if these ten VMs departed and
/// *then* I re-packed?") go through [`apply`](Self::apply) first. The
/// live session is never touched: the fork-isolation tests pin that a
/// probe leaves the original's full state bit-identical.
#[derive(Debug, Clone)]
pub struct WhatIf {
    fork: DatacenterController,
}

/// What a hypothetical re-pack would change, measured on the fork by
/// [`WhatIf::repack`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhatIfDelta {
    /// Active servers before the hypothetical re-pack.
    pub servers_before: usize,
    /// Active servers after it.
    pub servers_after: usize,
    /// Servers the re-pack would power off
    /// (`servers_before - servers_after`, floored at zero).
    pub servers_freed: usize,
    /// VMs the re-pack would migrate.
    pub migrations: usize,
    /// Estimated energy saved over the remainder of the current
    /// placement period, joules: the [`estimated_power_watts`]
    /// delta (before − after) × remaining period seconds. Negative
    /// when the re-pack would cost energy (it opened servers).
    ///
    /// [`estimated_power_watts`]: DatacenterController::estimated_power_watts
    pub energy_estimate: f64,
}

impl WhatIfDelta {
    /// The no-op delta of a probe with nothing to re-pack.
    fn unchanged(servers: usize) -> Self {
        Self {
            servers_before: servers,
            servers_after: servers,
            servers_freed: 0,
            migrations: 0,
            energy_estimate: 0.0,
        }
    }
}

/// Captures the fork's re-pack event for the delta report.
#[derive(Default)]
struct CaptureRepack {
    last: Option<RepackEvent>,
}

impl MetricSink for CaptureRepack {
    fn on_repack(&mut self, event: &RepackEvent) {
        self.last = Some(*event);
    }
}

impl WhatIf {
    /// The fork, for inspection (clock, placement, live VMs, …).
    pub fn controller(&self) -> &DatacenterController {
        &self.fork
    }

    /// Applies an event to the **fork** — a hypothetical suffix the
    /// live session never sees. Metric events the fork emits are
    /// discarded.
    ///
    /// # Errors
    ///
    /// As [`DatacenterController::apply`], against the fork's state.
    pub fn apply(&mut self, event: VmEvent) -> crate::Result<()> {
        self.fork.apply(event, &mut NullSink)
    }

    /// Runs the hypothetical off-cycle re-pack — the same full batch
    /// consolidation pass a fragmentation trigger would run, under
    /// [`RepackReason::WhatIf`] — on the fork and reports the delta.
    /// Outside a placement period (a freshly opened session, or after
    /// `finish`) or with no live VMs there is nothing to re-pack and
    /// the delta is all zeros.
    ///
    /// # Errors
    ///
    /// Propagates placement/power errors from the fork's re-pack.
    pub fn repack(&mut self) -> crate::Result<WhatIfDelta> {
        let servers_before = self.fork.placement.active_server_count();
        if self.fork.live_vms() == 0 || !self.fork.mid_period() {
            return Ok(WhatIfDelta::unchanged(servers_before));
        }
        let watts_before = self.fork.estimated_power_watts()?;
        let mut capture = CaptureRepack::default();
        self.fork
            .midperiod_repack(RepackReason::WhatIf, &mut capture)?;
        let servers_after = self.fork.placement.active_server_count();
        let watts_after = self.fork.estimated_power_watts()?;
        let remaining = self
            .fork
            .cfg
            .period_samples
            .saturating_sub(self.fork.clock - self.fork.period_start);
        Ok(WhatIfDelta {
            servers_before,
            servers_after,
            servers_freed: servers_before.saturating_sub(servers_after),
            migrations: capture.last.map_or(0, |e| e.migrations),
            energy_estimate: (watts_before - watts_after)
                * remaining as f64
                * self.fork.cfg.sample_dt_s,
        })
    }

    /// Consumes the probe, keeping the fork as an independent session
    /// (e.g. to commit the hypothetical by swapping it in).
    pub fn into_fork(self) -> DatacenterController {
        self.fork
    }
}

/// Routes a single-VM admission to the policy's `place_one` rule. PCP
/// and SuperVM consolidate per period only; between re-packs their
/// arrivals use the default best-fit rule (spelled through `BfdPolicy`,
/// whose inherited default it is). Every rule receives the arriving
/// VM's remaining lease for the drain-aware bias.
fn admit_choice(
    policy: Policy,
    vm: &VmDescriptor,
    lease: Option<usize>,
    servers: &[OpenServer<'_>],
    matrix: &CostMatrix,
) -> Option<usize> {
    match policy {
        Policy::Proposed(config) => ProposedPolicy::new(config)
            .expect("controller construction validates the proposed config")
            .place_one(vm, lease, servers, matrix),
        Policy::Ffd => FfdPolicy.place_one(vm, lease, servers, matrix),
        Policy::Bfd | Policy::Pcp { .. } | Policy::SuperVm { .. } => {
            BfdPolicy.place_one(vm, lease, servers, matrix)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the decay-streak bug: a zero-migration re-pack
    /// carries no cost signal, so it must leave an in-progress miss
    /// streak untouched. The broken `observe` cleared `misses` before
    /// its `migrations == 0` early return, letting a cost-free re-pack
    /// indefinitely postpone the slack decay.
    #[test]
    fn cost_free_repack_does_not_interrupt_miss_streak() {
        let mut ctl = SlackController::new(1, 3);
        ctl.observe(1, 8); // expensive: slack 1 -> 2
        assert_eq!(ctl.current(), 2);
        ctl.observe_miss(1); // streak 1 of MISS_STREAK=2
        ctl.observe(0, 0); // cost-free re-pack: no signal
        ctl.observe_miss(1); // streak completes -> decay
        assert_eq!(
            ctl.current(),
            1,
            "a zero-migration observe must not reset the miss streak"
        );
    }

    /// A priced observation (migrations > 0) legitimately resets the
    /// streak — only the cost-free case was the bug.
    #[test]
    fn priced_repack_still_resets_miss_streak() {
        let mut ctl = SlackController::new(1, 3);
        ctl.observe(1, 8); // slack 1 -> 2
        ctl.observe_miss(1); // streak 1
        ctl.observe(1, 3); // priced, mid-band: holds slack, resets streak
        ctl.observe_miss(1); // streak 1 again, not 2
        assert_eq!(ctl.current(), 2, "a priced observe must reset the streak");
        ctl.observe_miss(1);
        assert_eq!(ctl.current(), 1);
    }

    #[test]
    fn overcommit_controller_walks_within_bounds() {
        let guard = 0.05;
        let mut ctl = OvercommitController::new(0.0, 0.10);
        // Comfortable periods grow the margin in STEP increments after
        // RAISE_STREAK, never past the ceiling.
        for _ in 0..20 {
            ctl.observe_period(0.0, guard);
            assert!(ctl.current() <= ctl.max() + 1e-12);
            assert!(ctl.current() >= 0.0);
        }
        assert!(
            (ctl.current() - 0.10).abs() < 1e-9,
            "sustained headroom reaches the ceiling"
        );
        // A breach shrinks immediately.
        ctl.observe_period(0.20, guard);
        assert!((ctl.current() - 0.05).abs() < 1e-9);
        // Middle band (acceptable but not comfortable) holds.
        ctl.observe_period(0.04, guard);
        assert!((ctl.current() - 0.05).abs() < 1e-9);
        // And the middle band resets the raise streak: one comfortable
        // period after it must not grow yet.
        ctl.observe_period(0.0, guard);
        assert!((ctl.current() - 0.05).abs() < 1e-9);
        ctl.observe_period(0.0, guard);
        assert!((ctl.current() - 0.10).abs() < 1e-9);
        // Repeated breaches floor at zero.
        for _ in 0..5 {
            ctl.observe_period(0.9, guard);
        }
        assert_eq!(ctl.current(), 0.0);
    }

    fn config_with(
        overcommit: Option<OvercommitConfig>,
        guard: Option<QosGuard>,
    ) -> ControllerConfig {
        ControllerConfig {
            server_fleet: cavm_core::fleet::ServerFleet::uniform(
                8,
                8.0,
                cavm_power::LinearPowerModel::xeon_e5410(),
            )
            .unwrap(),
            policy: Policy::Proposed(Default::default()),
            repack_trigger: RepackTrigger::Periodic,
            qos_guard: guard,
            adaptive_slack_max: None,
            overcommit,
            dvfs_mode: DvfsMode::Static,
            period_samples: 16,
            reference: Reference::Peak,
            dynamic_headroom: 0.1,
            default_demand: 1.0,
            sample_dt_s: 5.0,
            max_deferred: 64,
        }
    }

    #[test]
    fn overcommit_config_validation() {
        let guard = Some(QosGuard {
            violation_ratio: 0.05,
        });
        let oc = |margin, max_margin| Some(OvercommitConfig { margin, max_margin });

        config_with(oc(0.0, 0.25), guard)
            .validate()
            .expect("margin 0 with a guard is valid");
        assert!(
            config_with(oc(0.0, 0.25), None).validate().is_err(),
            "overcommit requires the guard"
        );
        assert!(
            config_with(oc(0.0, 0.0), guard).validate().is_err(),
            "max_margin must be positive"
        );
        assert!(
            config_with(oc(0.5, 0.25), guard).validate().is_err(),
            "margin must not exceed max_margin"
        );
    }
}
