//! The online datacenter controller — an event-driven VM lifecycle
//! session.
//!
//! Where [`Scenario::run`] replays a *closed* world (every VM exists
//! for the whole horizon), [`DatacenterController`] is the open-system
//! API underneath it: a stateful session driven by [`VmEvent`]s —
//! `Arrive`, `Depart`, `Tick` — holding a live
//! [`Placement`], per-server incremental
//! [`ServerCostAggregate`]s and per-class energy meters, and streaming
//! progress through a [`MetricSink`] instead of only a terminal report.
//!
//! Semantics per event:
//!
//! * **`Tick`** advances one monitoring sample. The first tick of each
//!   placement period runs the batch UPDATE/ALLOCATE pass (predict →
//!   cost matrix → full policy re-pack → per-server Eqn (4) frequency),
//!   exactly as the paper's Fig 2 prescribes "at every t_period"; every
//!   tick then replays one sample (violations, energy integration,
//!   dynamic DVFS re-planning, Fig 6 histograms). The tick that
//!   completes a period observes it for the next UPDATE and rebuilds
//!   the pairwise matrix from the period's window.
//! * **`Arrive`** registers a VM whose trace starts at the current
//!   sample. Mid-period arrivals are admitted **incrementally** through
//!   [`AllocationPolicy::place_one`] — an O(open servers ×
//!   |members|) scan over the live cost aggregates, *not* a full
//!   re-pack — and the hosting server's frequency is re-planned.
//!   Arrivals between periods simply join the next batch pass.
//! * **`Depart`** evicts the VM; the vacated server keeps its slot (and
//!   stays admissible for future arrivals), its aggregate is rebuilt
//!   and its frequency re-planned. Fully-emptied servers power off
//!   (they are skipped by the replay) until re-used or compacted by the
//!   next period's re-pack.
//!
//! Driven with every VM arriving at t = 0 and no departures, the
//! controller is **bit-identical** to the historical batch engine —
//! the `fleet_regression` golden tests and the batch≡online equivalence
//! property tests pin this.
//!
//! [`Scenario::run`]: crate::config::Scenario::run
//! [`AllocationPolicy::place_one`]: cavm_core::alloc::AllocationPolicy::place_one

use crate::config::Policy;
use crate::report::{ClassBreakdown, PeriodRecord, SimReport};
use crate::SimError;
use cavm_core::alloc::{
    AllocationPolicy, BfdPolicy, FfdPolicy, OpenServer, PcpPolicy, Placement, ProposedPolicy,
    SuperVmPolicy, VmDescriptor,
};
use cavm_core::corr::CostMatrix;
use cavm_core::dvfs::{DvfsMode, FleetFrequencyPlanner};
use cavm_core::fleet::ServerFleet;
use cavm_core::servercost::{server_cost_of, ServerCostAggregate};
use cavm_core::CoreError;
use cavm_power::{EnergyMeter, PowerModel};
use cavm_trace::{Reference, TimeSeries};

pub(crate) const VIOLATION_EPS: f64 = 1e-9;

/// A fleet that cannot host the placement surfaces as the sim-level
/// "insufficient servers" error; everything else passes through.
pub(crate) fn map_core(e: CoreError) -> SimError {
    match e {
        CoreError::FleetExhausted { slots, unallocated } => SimError::InsufficientServers {
            // Each leftover VM needs at most one more server, so this
            // is an upper bound on the shortfall.
            needed: slots.saturating_add(unallocated),
            available: slots,
        },
        e => SimError::Core(e),
    }
}

/// One step of a VM's lifecycle, applied with
/// [`DatacenterController::apply`].
#[derive(Debug, Clone, PartialEq)]
pub enum VmEvent {
    /// A VM enters the datacenter. `trace` is its demand signal from
    /// this instant on (sample 0 of the trace is the current tick).
    /// Ids are caller-chosen but must be fresh — a departed id cannot
    /// re-arrive.
    Arrive {
        /// Fresh VM id; indexes the controller's registry (and the
        /// period cost matrices) from now on.
        id: usize,
        /// Demand trace starting at the arrival instant. Samples past
        /// its end (or after departure) read as zero demand.
        trace: TimeSeries,
    },
    /// The VM's lease ends; it is evicted from its server before the
    /// next sample is replayed.
    Depart {
        /// Id of a currently live VM.
        id: usize,
    },
    /// Advance one monitoring sample.
    Tick,
}

/// One capacity violation instance, as streamed to
/// [`MetricSink::on_violation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViolationEvent {
    /// Global sample index.
    pub sample: usize,
    /// Placement period index.
    pub period: usize,
    /// Server (placement bin) index.
    pub server: usize,
    /// Fleet class of the server.
    pub class: usize,
    /// Aggregate demand at the instant, cores.
    pub demand: f64,
    /// Frequency-scaled capacity it exceeded, cores.
    pub capacity: f64,
}

/// Streaming observer of a controller session. All methods default to
/// no-ops; implement the ones you care about.
pub trait MetricSink {
    /// A placement period completed.
    fn on_period(&mut self, record: &PeriodRecord) {
        let _ = record;
    }

    /// A VM moved servers across a period boundary (migration).
    fn on_migration(&mut self, period: usize, vm: usize, from: usize, to: usize) {
        let _ = (period, vm, from, to);
    }

    /// A server exceeded its frequency-scaled capacity for one sample.
    fn on_violation(&mut self, event: &ViolationEvent) {
        let _ = event;
    }

    /// Energy a server class consumed over the just-completed period.
    fn on_class_energy(&mut self, period: usize, class: usize, name: &str, period_joules: f64) {
        let _ = (period, class, name, period_joules);
    }

    /// A mid-period arrival was admitted through the incremental
    /// single-VM placement path.
    fn on_admit(&mut self, sample: usize, vm: usize, server: usize) {
        let _ = (sample, vm, server);
    }

    /// The session finished; `report` is the terminal aggregate (the
    /// same `SimReport` the batch API returns).
    fn on_summary(&mut self, report: &SimReport) {
        let _ = report;
    }
}

/// A sink that ignores every event — for callers that only want the
/// terminal report via [`DatacenterController::report`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl MetricSink for NullSink {}

/// Collects the stream back into batch-shaped results: the period
/// records as they arrive and the terminal [`SimReport`] — this is the
/// sink `Scenario::run` drives to keep the old API working.
#[derive(Debug, Clone, Default)]
pub struct ReportSink {
    periods: Vec<PeriodRecord>,
    migrations: usize,
    violations: usize,
    admissions: usize,
    report: Option<SimReport>,
}

impl ReportSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Period records streamed so far.
    pub fn periods(&self) -> &[PeriodRecord] {
        &self.periods
    }

    /// Migration events streamed so far.
    pub fn migrations(&self) -> usize {
        self.migrations
    }

    /// Violation instances streamed so far.
    pub fn violations(&self) -> usize {
        self.violations
    }

    /// Incremental admissions streamed so far.
    pub fn admissions(&self) -> usize {
        self.admissions
    }

    /// The terminal report, once [`MetricSink::on_summary`] has fired.
    pub fn into_report(self) -> Option<SimReport> {
        self.report
    }
}

impl MetricSink for ReportSink {
    fn on_period(&mut self, record: &PeriodRecord) {
        self.periods.push(record.clone());
    }

    fn on_migration(&mut self, _period: usize, _vm: usize, _from: usize, _to: usize) {
        self.migrations += 1;
    }

    fn on_violation(&mut self, _event: &ViolationEvent) {
        self.violations += 1;
    }

    fn on_admit(&mut self, _sample: usize, _vm: usize, _server: usize) {
        self.admissions += 1;
    }

    fn on_summary(&mut self, report: &SimReport) {
        self.report = Some(report.clone());
    }
}

/// Static configuration of a controller session — the scenario knobs
/// minus the trace fleet (traces arrive with the VMs).
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// The server fleet to place onto. Must be bounded.
    pub server_fleet: ServerFleet,
    /// Placement policy (periodic re-packs *and* the incremental
    /// admission rule).
    pub policy: Policy,
    /// Static or dynamic frequency scaling.
    pub dvfs_mode: DvfsMode,
    /// Samples per placement period.
    pub period_samples: usize,
    /// Reference utilization for provisioning.
    pub reference: Reference,
    /// Relative headroom of the dynamic governor.
    pub dynamic_headroom: f64,
    /// Demand assumed for a VM before its first observed period — also
    /// the provisioning used to admit a brand-new arrival.
    pub default_demand: f64,
    /// Monitoring sample interval, seconds (the energy-integration dt).
    pub sample_dt_s: f64,
}

impl ControllerConfig {
    fn validate(&self) -> crate::Result<()> {
        if self.server_fleet.total_slots().is_none() {
            return Err(SimError::InvalidParameter(
                "controller fleets must be bounded (no UNBOUNDED classes)",
            ));
        }
        if self.period_samples == 0 {
            return Err(SimError::InvalidParameter(
                "period must be at least one sample",
            ));
        }
        if !(self.dynamic_headroom.is_finite() && self.dynamic_headroom >= 0.0) {
            return Err(SimError::InvalidParameter("dynamic headroom must be >= 0"));
        }
        if !(self.default_demand.is_finite() && self.default_demand > 0.0) {
            return Err(SimError::InvalidParameter("default demand must be > 0"));
        }
        if !(self.sample_dt_s.is_finite() && self.sample_dt_s > 0.0) {
            return Err(SimError::InvalidParameter(
                "sample interval must be finite and > 0",
            ));
        }
        if let Policy::Proposed(config) = self.policy {
            // Surface a bad tuning at session construction, not at the
            // first period boundary (or, worse, silently at an
            // incremental admit).
            ProposedPolicy::new(config).map_err(SimError::Core)?;
        }
        if let Policy::Pcp {
            envelope_percentile,
            affinity_threshold,
        } = self.policy
        {
            if !(0.0 < envelope_percentile && envelope_percentile < 100.0) {
                return Err(SimError::InvalidParameter(
                    "pcp envelope percentile must lie in (0, 100)",
                ));
            }
            if !(0.0..=1.0).contains(&affinity_threshold) {
                return Err(SimError::InvalidParameter(
                    "pcp affinity threshold must lie in [0, 1]",
                ));
            }
        }
        if let Policy::SuperVm { min_pair_cost } = self.policy {
            if !min_pair_cost.is_finite() {
                return Err(SimError::InvalidParameter(
                    "super-vm pair-cost threshold must be finite",
                ));
            }
        }
        if let DvfsMode::Dynamic { interval_samples } = self.dvfs_mode {
            if interval_samples == 0 {
                return Err(SimError::InvalidParameter(
                    "dynamic interval must be >= 1 sample",
                ));
            }
        }
        Ok(())
    }
}

/// One registered VM.
#[derive(Debug, Clone)]
struct VmSlot {
    /// Demand trace; sample 0 is the arrival instant.
    trace: TimeSeries,
    /// Global sample index of the arrival.
    arrival: usize,
    /// `false` once departed.
    live: bool,
    /// Last observed per-period reference peak (predictor state).
    last_peak: Option<f64>,
    /// Last observed per-period 90th percentile (predictor state).
    last_off: Option<f64>,
}

/// Demand of a registered VM at global sample `k` (zero before arrival,
/// after departure, or past the end of its trace).
fn sample_of(slot: &Option<VmSlot>, k: usize) -> f64 {
    match slot {
        Some(s) if s.live && k >= s.arrival => {
            s.trace.values().get(k - s.arrival).copied().unwrap_or(0.0)
        }
        _ => 0.0,
    }
}

/// The stateful online allocation session. See the [module
/// docs](self) for event semantics.
#[derive(Debug)]
pub struct DatacenterController {
    cfg: ControllerConfig,
    planner: FleetFrequencyPlanner,
    class_wpc: Vec<f64>,
    total_slots: usize,
    /// Sorted union of every class ladder (the report histogram axis).
    union_ghz: Vec<f64>,
    /// `union_level[class][class_level]` → union axis column.
    union_level: Vec<Vec<usize>>,

    // ---- registry & clock.
    slots: Vec<Option<VmSlot>>,
    clock: usize,
    period: usize,
    period_start: usize,
    in_period: bool,
    finished: bool,

    // ---- live placement state (valid while `in_period`).
    placement: Placement,
    aggregates: Vec<ServerCostAggregate>,
    classes_of: Vec<usize>,
    cores_of: Vec<f64>,
    freq_idx: Vec<usize>,
    window_max_agg: Vec<f64>,
    window_max_vm: Vec<f64>,
    server_violations: Vec<usize>,
    period_migrations: usize,
    pcp_clusters: Option<usize>,
    period_class_joules_start: Vec<f64>,
    assignment: Vec<Option<usize>>,
    /// Dense (id-indexed) descriptor table of the current period.
    dense_vms: Vec<VmDescriptor>,

    // ---- period window & matrix state.
    matrix: Option<CostMatrix>,
    window: Vec<Vec<f64>>,
    prev_window: Option<Vec<TimeSeries>>,
    sample_buf: Vec<f64>,

    // ---- run accumulators.
    class_energy: Vec<EnergyMeter>,
    class_violations: Vec<usize>,
    class_migrations: Vec<usize>,
    class_peak_servers: Vec<usize>,
    freq_histogram: Vec<Vec<u64>>,
    class_freq_histogram: Vec<Vec<u64>>,
    period_records: Vec<PeriodRecord>,
    violation_instances: usize,
    online_admissions: usize,
}

impl DatacenterController {
    /// Opens a session.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for an unbounded fleet or
    /// out-of-range tuning values.
    pub fn new(cfg: ControllerConfig) -> crate::Result<Self> {
        cfg.validate()?;
        let fleet = &cfg.server_fleet;
        let n_classes = fleet.len();
        let total_slots = fleet
            .total_slots()
            .expect("validation rejects unbounded fleets");
        let planner = FleetFrequencyPlanner::new(fleet);
        let class_wpc: Vec<f64> = fleet
            .classes()
            .iter()
            .map(|c| c.busy_watts_per_core())
            .collect();

        // The histogram's frequency axis is the sorted union of every
        // class ladder (a uniform fleet keeps its own ladder).
        let mut union_ghz: Vec<f64> = fleet
            .classes()
            .iter()
            .flat_map(|c| c.ladder().levels().iter().map(|f| f.as_ghz()))
            .collect();
        union_ghz.sort_by(|a, b| a.partial_cmp(b).expect("finite frequencies"));
        union_ghz.dedup();
        let union_level: Vec<Vec<usize>> = fleet
            .classes()
            .iter()
            .map(|c| {
                c.ladder()
                    .levels()
                    .iter()
                    .map(|f| {
                        union_ghz
                            .iter()
                            .position(|&g| g == f.as_ghz())
                            .expect("union contains every class level")
                    })
                    .collect()
            })
            .collect();
        let class_freq_histogram = fleet
            .classes()
            .iter()
            .map(|c| vec![0u64; c.ladder().len()])
            .collect();

        Ok(Self {
            planner,
            class_wpc,
            total_slots,
            freq_histogram: vec![vec![0u64; union_ghz.len()]; total_slots],
            union_ghz,
            union_level,
            slots: Vec::new(),
            clock: 0,
            period: 0,
            period_start: 0,
            in_period: false,
            finished: false,
            placement: Placement::from_servers(vec![]),
            aggregates: Vec::new(),
            classes_of: Vec::new(),
            cores_of: Vec::new(),
            freq_idx: Vec::new(),
            window_max_agg: Vec::new(),
            window_max_vm: Vec::new(),
            server_violations: Vec::new(),
            period_migrations: 0,
            pcp_clusters: None,
            period_class_joules_start: vec![0.0; n_classes],
            assignment: Vec::new(),
            dense_vms: Vec::new(),
            matrix: None,
            window: Vec::new(),
            prev_window: None,
            sample_buf: Vec::new(),
            class_energy: vec![EnergyMeter::new(); n_classes],
            class_violations: vec![0; n_classes],
            class_migrations: vec![0; n_classes],
            class_peak_servers: vec![0; n_classes],
            class_freq_histogram,
            period_records: Vec::new(),
            violation_instances: 0,
            online_admissions: 0,
            cfg,
        })
    }

    /// The session configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Global sample index of the next tick.
    pub fn clock(&self) -> usize {
        self.clock
    }

    /// Number of currently live VMs.
    pub fn live_vms(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.as_ref().is_some_and(|s| s.live))
            .count()
    }

    /// VMs admitted through the incremental (mid-period) path so far.
    pub fn online_admissions(&self) -> usize {
        self.online_admissions
    }

    /// Applies one lifecycle event.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a finished session,
    /// a duplicate or unknown VM id; placement/trace/power errors
    /// propagate, with fleet exhaustion mapped to
    /// [`SimError::InsufficientServers`].
    pub fn apply(&mut self, event: VmEvent, sink: &mut dyn MetricSink) -> crate::Result<()> {
        match event {
            VmEvent::Arrive { id, trace } => self.arrive(id, trace, sink),
            VmEvent::Depart { id } => self.depart(id),
            VmEvent::Tick => self.tick(sink),
        }
    }

    fn check_open(&self) -> crate::Result<()> {
        if self.finished {
            return Err(SimError::InvalidParameter(
                "controller session already finished",
            ));
        }
        Ok(())
    }

    /// Registers an arriving VM. Mid-period arrivals are admitted
    /// incrementally (no re-pack); arrivals between periods join the
    /// next period's batch placement.
    ///
    /// # Errors
    ///
    /// See [`DatacenterController::apply`].
    pub fn arrive(
        &mut self,
        id: usize,
        trace: TimeSeries,
        sink: &mut dyn MetricSink,
    ) -> crate::Result<()> {
        self.check_open()?;
        if self.slots.get(id).is_some_and(|s| s.is_some()) {
            return Err(SimError::InvalidParameter(
                "vm id already registered with the controller",
            ));
        }
        while self.slots.len() <= id {
            let fresh = self.slots.len();
            self.slots.push(None);
            self.dense_vms
                .push(VmDescriptor::new(fresh, 0.0).with_off_peak(0.0));
        }
        self.slots[id] = Some(VmSlot {
            trace,
            arrival: self.clock,
            live: true,
            last_peak: None,
            last_off: None,
        });
        if self.in_period {
            self.admit_live(id, sink)?;
        }
        Ok(())
    }

    /// Ends a VM's lease.
    ///
    /// # Errors
    ///
    /// See [`DatacenterController::apply`].
    pub fn depart(&mut self, id: usize) -> crate::Result<()> {
        self.check_open()?;
        let slot = self
            .slots
            .get_mut(id)
            .and_then(|s| s.as_mut())
            .ok_or(SimError::InvalidParameter("unknown vm id"))?;
        if !slot.live {
            return Err(SimError::InvalidParameter("vm already departed"));
        }
        slot.live = false;
        if self.in_period && self.placement.server_of(id).is_some() {
            let server = self.placement.evict(id).map_err(SimError::Core)?;
            self.dense_vms[id] = VmDescriptor::new(id, 0.0).with_off_peak(0.0);
            if let Some(a) = self.assignment.get_mut(id) {
                *a = None;
            }
            // Rebuild the vacated server's aggregate from the remaining
            // members and re-plan its frequency.
            let matrix = self
                .matrix
                .as_ref()
                .expect("a placed vm implies a period matrix");
            let mut agg = ServerCostAggregate::new();
            for &m in &self.placement.servers()[server] {
                agg.push(m, self.dense_vms[m].demand, matrix);
            }
            self.aggregates[server] = agg;
            self.replan_bin(server)?;
        }
        Ok(())
    }

    /// Advances one monitoring sample.
    ///
    /// # Errors
    ///
    /// See [`DatacenterController::apply`].
    pub fn tick(&mut self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        self.check_open()?;
        if !self.in_period {
            self.start_period(sink)?;
            self.in_period = true;
        }
        self.replay_tick(sink)?;
        self.clock += 1;
        if self.clock - self.period_start == self.cfg.period_samples {
            self.end_period(sink)?;
        }
        Ok(())
    }

    /// Ends the session: emits [`MetricSink::on_summary`] with the
    /// terminal report. A partially replayed period is dropped, like
    /// the trailing partial period of a batch run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if already finished.
    pub fn finish(&mut self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        self.check_open()?;
        self.finished = true;
        sink.on_summary(&self.report());
        Ok(())
    }

    /// The terminal aggregate over all *completed* periods — the same
    /// shape (and, for a batch-equivalent drive, the same bits) as
    /// [`Scenario::run`](crate::config::Scenario::run)'s report.
    pub fn report(&self) -> SimReport {
        let max_violation = self
            .period_records
            .iter()
            .map(|p| p.max_violation_ratio)
            .fold(0.0, f64::max);
        let mean_violation = if self.period_records.is_empty() {
            0.0
        } else {
            self.period_records
                .iter()
                .map(|p| p.max_violation_ratio)
                .sum::<f64>()
                / self.period_records.len() as f64
        };
        let mut energy = EnergyMeter::new();
        for meter in &self.class_energy {
            energy.merge(meter);
        }
        let classes: Vec<ClassBreakdown> = self
            .cfg
            .server_fleet
            .classes()
            .iter()
            .enumerate()
            .map(|(c, spec)| ClassBreakdown {
                name: spec.name().to_string(),
                cores: spec.cores(),
                servers_available: spec.count(),
                peak_servers_used: self.class_peak_servers[c],
                energy: self.class_energy[c],
                violation_instances: self.class_violations[c],
                migrations_in: self.class_migrations[c],
                freq_levels_ghz: spec.ladder().levels().iter().map(|f| f.as_ghz()).collect(),
                freq_histogram: self.class_freq_histogram[c].clone(),
            })
            .collect();
        SimReport {
            policy: self.cfg.policy.name().to_string(),
            dynamic_dvfs: matches!(self.cfg.dvfs_mode, DvfsMode::Dynamic { .. }),
            energy,
            max_violation_percent: max_violation * 100.0,
            mean_violation_percent: mean_violation * 100.0,
            violation_instances: self.violation_instances,
            periods: self.period_records.clone(),
            classes,
            freq_histogram: self.freq_histogram.clone(),
            freq_levels_ghz: self.union_ghz.clone(),
            online_admissions: self.online_admissions,
        }
    }

    // ---- period machinery -------------------------------------------------

    /// Replays a window into a matrix with the same (possibly parallel)
    /// kernel the batch engine used.
    fn push_window(matrix: &mut CostMatrix, refs: &[&TimeSeries], len: usize) -> crate::Result<()> {
        #[cfg(feature = "parallel")]
        return matrix
            .par_push_columns(refs, 0, len)
            .map_err(SimError::Core);
        #[cfg(not(feature = "parallel"))]
        return matrix.push_columns(refs, 0, len).map_err(SimError::Core);
    }

    /// Builds a fresh matrix over `universe` VMs — from the previous
    /// period's windows when they exist (zero-padded for VMs that
    /// postdate them), else empty (period 0: all pairs neutral).
    fn rebuild_matrix(&mut self, universe: usize) -> crate::Result<()> {
        let mut matrix = CostMatrix::new(universe, self.cfg.reference).map_err(SimError::Core)?;
        if let Some(windows) = &self.prev_window {
            if !windows.is_empty() {
                let len = windows[0].len();
                let zero = TimeSeries::constant(self.cfg.sample_dt_s, len, 0.0)
                    .map_err(SimError::Trace)?;
                let mut refs: Vec<&TimeSeries> = windows.iter().collect();
                while refs.len() < universe {
                    refs.push(&zero);
                }
                refs.truncate(universe);
                Self::push_window(&mut matrix, &refs, len)?;
            }
        }
        self.matrix = Some(matrix);
        Ok(())
    }

    /// The full policy re-pack of the live VM set (plus the PCP cluster
    /// count when applicable) — the batch ALLOCATE pass.
    fn place_live(&self, vms: &[VmDescriptor]) -> crate::Result<(Placement, Option<usize>)> {
        let fleet = &self.cfg.server_fleet;
        let matrix = self
            .matrix
            .as_ref()
            .expect("matrix is built before placement");
        match self.cfg.policy {
            Policy::Bfd => Ok((BfdPolicy.place(vms, matrix, fleet).map_err(map_core)?, None)),
            Policy::Ffd => Ok((FfdPolicy.place(vms, matrix, fleet).map_err(map_core)?, None)),
            Policy::Proposed(config) => {
                let policy = ProposedPolicy::new(config).map_err(SimError::Core)?;
                Ok((policy.place(vms, matrix, fleet).map_err(map_core)?, None))
            }
            Policy::SuperVm { min_pair_cost } => {
                let policy = SuperVmPolicy::new(min_pair_cost).map_err(SimError::Core)?;
                Ok((policy.place(vms, matrix, fleet).map_err(map_core)?, None))
            }
            Policy::Pcp {
                envelope_percentile,
                affinity_threshold,
            } => {
                let windows = match &self.prev_window {
                    // No history yet — including a previous period that
                    // held zero VMs: a single degenerate cluster, i.e.
                    // BFD behaviour.
                    Some(w) if !w.is_empty() => w,
                    _ => {
                        return Ok((
                            BfdPolicy.place(vms, matrix, fleet).map_err(map_core)?,
                            Some(1),
                        ))
                    }
                };
                // VMs that postdate the window cluster from an all-zero
                // envelope.
                let len = windows[0].len();
                let zero = TimeSeries::constant(self.cfg.sample_dt_s, len, 0.0)
                    .map_err(SimError::Trace)?;
                let mut refs: Vec<&TimeSeries> = windows.iter().collect();
                while refs.len() < self.slots.len() {
                    refs.push(&zero);
                }
                let pcp = PcpPolicy::from_traces(&refs, envelope_percentile, affinity_threshold)
                    .map_err(SimError::Core)?;
                let clusters = pcp.cluster_count();
                Ok((
                    pcp.place(vms, matrix, fleet).map_err(map_core)?,
                    Some(clusters),
                ))
            }
        }
    }

    /// The UPDATE + ALLOCATE pass at a period boundary: predict live
    /// demands, refresh the matrix dimension, re-pack, count
    /// migrations, and plan every server's static frequency.
    fn start_period(&mut self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        let universe = self.slots.len();
        self.period_start = self.clock;

        // ---- UPDATE: predicted descriptors (last-value predictor with
        // the configured default before the first observation).
        self.dense_vms.clear();
        let mut live_vms = Vec::new();
        for (id, slot) in self.slots.iter().enumerate() {
            let descriptor = match slot {
                Some(s) if s.live => {
                    let demand = s.last_peak.unwrap_or(self.cfg.default_demand).max(0.0);
                    let off = s.last_off.unwrap_or(demand * 0.9).clamp(0.0, demand);
                    let d = VmDescriptor::new(id, demand).with_off_peak(off);
                    live_vms.push(d);
                    d
                }
                _ => VmDescriptor::new(id, 0.0).with_off_peak(0.0),
            };
            self.dense_vms.push(descriptor);
        }
        if universe > 0 {
            let stale = self.matrix.as_ref().is_none_or(|m| m.len() != universe);
            if stale {
                self.rebuild_matrix(universe)?;
            }
        }

        // ---- ALLOCATE.
        let (placement, pcp_clusters) = if live_vms.is_empty() {
            let clusters = matches!(self.cfg.policy, Policy::Pcp { .. }).then_some(1);
            (Placement::from_servers(vec![]), clusters)
        } else {
            self.place_live(&live_vms)?
        };
        self.pcp_clusters = pcp_clusters;

        // Migrations relative to the live assignment at the end of the
        // previous period, attributed to the class of the *destination*
        // server. Only VMs placed in both periods can migrate.
        let assignment = placement.assignment(universe);
        let mut migrations = 0usize;
        let prev = std::mem::take(&mut self.assignment);
        if self.period > 0 {
            for (id, &now) in assignment.iter().enumerate() {
                let before = prev.get(id).copied().flatten();
                if let (Some(b), Some(n)) = (before, now) {
                    if b != n {
                        migrations += 1;
                        self.class_migrations[placement.classes()[n]] += 1;
                        sink.on_migration(self.period, id, b, n);
                    }
                }
            }
        }
        self.period_migrations = migrations;
        self.assignment = assignment;

        // Rebuild per-server state: cost aggregates, class/capacity
        // tables, dynamic-governor windows.
        let matrix = self.matrix.as_ref();
        self.classes_of = placement.classes().to_vec();
        self.cores_of = self
            .classes_of
            .iter()
            .map(|&c| self.cfg.server_fleet.classes()[c].cores())
            .collect();
        self.aggregates = placement
            .servers()
            .iter()
            .map(|members| {
                let mut agg = ServerCostAggregate::new();
                if let Some(m) = matrix {
                    for &id in members {
                        agg.push(id, self.dense_vms[id].demand, m);
                    }
                }
                agg
            })
            .collect();
        let bins = placement.server_count();
        self.window_max_agg = vec![0.0; bins];
        self.window_max_vm = vec![0.0; universe];
        self.server_violations = vec![0; bins];
        self.period_class_joules_start = self.class_energy.iter().map(|m| m.joules()).collect();

        // Static frequency per active server, planned against its own
        // class ladder and capacity.
        let server_demands = placement.server_demands(&self.dense_vms);
        let mut freq_idx = Vec::with_capacity(bins);
        for (s, members) in placement.servers().iter().enumerate() {
            let class = self.classes_of[s];
            let total = server_demands[s];
            let f = if self.cfg.policy.correlation_aware_frequency() {
                let m = matrix.expect("live servers imply a matrix");
                let cost = server_cost_of(members, &self.dense_vms, m).max(1.0);
                self.planner
                    .static_level_correlation_aware(class, total, cost)
                    .map_err(SimError::Core)?
            } else {
                self.planner
                    .static_level_worst_case(class, total)
                    .map_err(SimError::Core)?
            };
            let ladder = self.cfg.server_fleet.classes()[class].ladder();
            freq_idx.push(ladder.index_of(f).expect("planner returns ladder levels"));
        }
        self.freq_idx = freq_idx;
        self.placement = placement;
        Ok(())
    }

    /// Replays the current sample: per-server aggregation, dynamic
    /// DVFS, violations, energy and histograms.
    fn replay_tick(&mut self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        let universe = self.slots.len();
        let k = self.clock;
        let k_in_period = k - self.period_start;
        let elapsed = k_in_period;
        while self.window.len() < universe {
            let mut w = Vec::with_capacity(self.cfg.period_samples);
            w.resize(elapsed, 0.0);
            self.window.push(w);
        }
        self.sample_buf.resize(universe, 0.0);
        for id in 0..universe {
            let v = sample_of(&self.slots[id], k);
            self.sample_buf[id] = v;
            self.window[id].push(v);
        }

        let dt = self.cfg.sample_dt_s;
        for s in 0..self.placement.server_count() {
            let members: &[usize] = &self.placement.servers()[s];
            if members.is_empty() {
                // A fully vacated server is powered off until re-used.
                continue;
            }
            let class = self.classes_of[s];
            let capacity = self.cores_of[s];
            let ladder = self.cfg.server_fleet.classes()[class].ladder();
            let agg: f64 = members.iter().map(|&v| self.sample_buf[v]).sum();

            if let DvfsMode::Dynamic { interval_samples } = self.cfg.dvfs_mode {
                if k_in_period > 0 && k_in_period.is_multiple_of(interval_samples) {
                    // Correlation-aware governors trust the measured
                    // *aggregate* peak; correlation-blind ones must
                    // assume per-VM peaks can coincide (Σ max ≥ max Σ).
                    let recent = if self.cfg.policy.correlation_aware_frequency() {
                        self.window_max_agg[s]
                    } else {
                        members.iter().map(|&v| self.window_max_vm[v]).sum()
                    };
                    let f = self
                        .planner
                        .dynamic_level(class, recent, self.cfg.dynamic_headroom)
                        .map_err(SimError::Core)?;
                    self.freq_idx[s] = ladder.index_of(f).expect("planner returns ladder levels");
                    self.window_max_agg[s] = 0.0;
                    for &v in members {
                        self.window_max_vm[v] = 0.0;
                    }
                }
                self.window_max_agg[s] = self.window_max_agg[s].max(agg);
                for &v in members {
                    self.window_max_vm[v] = self.window_max_vm[v].max(self.sample_buf[v]);
                }
            }

            let f = ladder.get(self.freq_idx[s]).expect("index within ladder");
            let eff_capacity = capacity * f.ratio_to(ladder.max());
            if agg > eff_capacity + VIOLATION_EPS {
                self.server_violations[s] += 1;
                self.violation_instances += 1;
                self.class_violations[class] += 1;
                sink.on_violation(&ViolationEvent {
                    sample: k,
                    period: self.period,
                    server: s,
                    class,
                    demand: agg,
                    capacity: eff_capacity,
                });
            }
            let u = (agg / eff_capacity).clamp(0.0, 1.0);
            let watts = self.cfg.server_fleet.classes()[class]
                .power_model()
                .power(u, f)
                .map_err(SimError::Power)?;
            self.class_energy[class].add(watts, dt);
            self.freq_histogram[s][self.union_level[class][self.freq_idx[s]]] += 1;
            self.class_freq_histogram[class][self.freq_idx[s]] += 1;
        }
        Ok(())
    }

    /// Observes the completed period for the next UPDATE, rebuilds the
    /// matrix from the period window, and emits the period's metrics.
    fn end_period(&mut self, sink: &mut dyn MetricSink) -> crate::Result<()> {
        let universe = self.slots.len();

        // ---- Observe this period for the next UPDATE.
        for id in 0..universe {
            if let Some(slot) = &mut self.slots[id] {
                if slot.live {
                    let win = &self.window[id];
                    let peak = self.cfg.reference.of(win).map_err(SimError::Trace)?;
                    slot.last_peak = Some(peak);
                    let off = cavm_trace::percentile(win, 90.0).map_err(SimError::Trace)?;
                    slot.last_off = Some(off);
                }
            }
        }

        // ---- Window replay into the next period's matrix.
        if universe > 0 {
            let mut windows = Vec::with_capacity(universe);
            for values in self.window.drain(..) {
                windows
                    .push(TimeSeries::new(self.cfg.sample_dt_s, values).map_err(SimError::Trace)?);
            }
            let mut matrix =
                CostMatrix::new(universe, self.cfg.reference).map_err(SimError::Core)?;
            let refs: Vec<&TimeSeries> = windows.iter().collect();
            Self::push_window(&mut matrix, &refs, self.cfg.period_samples)?;
            self.matrix = Some(matrix);
            self.prev_window = Some(windows);
        } else {
            self.window.clear();
            self.prev_window = Some(Vec::new());
        }

        // ---- Per-class peaks and the period record.
        for (class, peak) in self.class_peak_servers.iter_mut().enumerate() {
            let used = self
                .placement
                .servers()
                .iter()
                .zip(&self.classes_of)
                .filter(|(members, &c)| !members.is_empty() && c == class)
                .count();
            *peak = (*peak).max(used);
        }
        let max_ratio = self
            .server_violations
            .iter()
            .map(|&v| v as f64 / self.cfg.period_samples as f64)
            .fold(0.0, f64::max);
        let record = PeriodRecord {
            period: self.period,
            servers_used: self.placement.active_server_count(),
            max_violation_ratio: max_ratio,
            migrations: self.period_migrations,
            pcp_clusters: self.pcp_clusters,
        };
        sink.on_period(&record);
        for (c, meter) in self.class_energy.iter().enumerate() {
            sink.on_class_energy(
                self.period,
                c,
                self.cfg.server_fleet.classes()[c].name(),
                meter.joules() - self.period_class_joules_start[c],
            );
        }
        self.period_records.push(record);
        self.period += 1;
        self.in_period = false;
        Ok(())
    }

    // ---- incremental admission --------------------------------------------

    /// The next fill-order server slot not consumed by the live
    /// placement (empty-but-reserved slots count as consumed).
    fn next_open_slot(&self) -> crate::Result<(usize, f64)> {
        let fleet = &self.cfg.server_fleet;
        let mut used = vec![0usize; fleet.len()];
        for &c in self.placement.classes() {
            used[c] += 1;
        }
        for &class in fleet.fill_order() {
            if used[class] < fleet.classes()[class].count() {
                return Ok((class, fleet.classes()[class].cores()));
            }
        }
        Err(map_core(CoreError::FleetExhausted {
            slots: self.total_slots,
            unallocated: 1,
        }))
    }

    /// Re-plans one server's static frequency level from its current
    /// members (after an admit or evict).
    fn replan_bin(&mut self, s: usize) -> crate::Result<()> {
        let members: &[usize] = &self.placement.servers()[s];
        if members.is_empty() {
            return Ok(());
        }
        let class = self.classes_of[s];
        let total: f64 = members.iter().map(|&id| self.dense_vms[id].demand).sum();
        let f = if self.cfg.policy.correlation_aware_frequency() {
            let matrix = self
                .matrix
                .as_ref()
                .expect("live servers imply a period matrix");
            let cost = server_cost_of(members, &self.dense_vms, matrix).max(1.0);
            self.planner
                .static_level_correlation_aware(class, total, cost)
                .map_err(SimError::Core)?
        } else {
            self.planner
                .static_level_worst_case(class, total)
                .map_err(SimError::Core)?
        };
        let ladder = self.cfg.server_fleet.classes()[class].ladder();
        self.freq_idx[s] = ladder.index_of(f).expect("planner returns ladder levels");
        Ok(())
    }

    /// Admits a freshly arrived VM into the live placement through the
    /// policy's single-VM entry point — no re-pack.
    fn admit_live(&mut self, id: usize, sink: &mut dyn MetricSink) -> crate::Result<()> {
        let universe = self.slots.len();
        self.window_max_vm.resize(universe, 0.0);
        if self.assignment.len() < universe {
            self.assignment.resize(universe, None);
        }
        while self.dense_vms.len() < universe {
            let fresh = self.dense_vms.len();
            self.dense_vms
                .push(VmDescriptor::new(fresh, 0.0).with_off_peak(0.0));
        }
        let demand = self.cfg.default_demand;
        let vm = VmDescriptor::new(id, demand).with_off_peak(demand * 0.9);
        self.dense_vms[id] = vm;
        if self.matrix.is_none() {
            self.rebuild_matrix(universe)?;
        }

        let choice = {
            let matrix = self.matrix.as_ref().expect("ensured above");
            let views: Vec<OpenServer<'_>> = (0..self.placement.server_count())
                .map(|s| OpenServer {
                    class: self.classes_of[s],
                    cores: self.cores_of[s],
                    watts_per_core: self.class_wpc[self.classes_of[s]],
                    agg: &self.aggregates[s],
                })
                .collect();
            admit_choice(self.cfg.policy, &vm, &views, matrix)
        };
        let server = match choice {
            Some(s) => s,
            None => {
                let (class, cores) = self.next_open_slot()?;
                let s = self.placement.open_server(class);
                self.classes_of.push(class);
                self.cores_of.push(cores);
                self.aggregates.push(ServerCostAggregate::new());
                self.freq_idx.push(0);
                self.window_max_agg.push(0.0);
                self.server_violations.push(0);
                s
            }
        };
        self.placement.admit(id, server).map_err(SimError::Core)?;
        {
            let matrix = self.matrix.as_ref().expect("ensured above");
            self.aggregates[server].push(id, demand, matrix);
        }
        self.assignment[id] = Some(server);
        self.replan_bin(server)?;
        self.online_admissions += 1;
        sink.on_admit(self.clock, id, server);
        Ok(())
    }
}

/// Routes a single-VM admission to the policy's `place_one` rule. PCP
/// and SuperVM consolidate per period only; between re-packs their
/// arrivals use the default best-fit rule (spelled through `BfdPolicy`,
/// whose inherited default it is).
fn admit_choice(
    policy: Policy,
    vm: &VmDescriptor,
    servers: &[OpenServer<'_>],
    matrix: &CostMatrix,
) -> Option<usize> {
    match policy {
        Policy::Proposed(config) => ProposedPolicy::new(config)
            .expect("controller construction validates the proposed config")
            .place_one(vm, servers, matrix),
        Policy::Ffd => FfdPolicy.place_one(vm, servers, matrix),
        Policy::Bfd | Policy::Pcp { .. } | Policy::SuperVm { .. } => {
            BfdPolicy.place_one(vm, servers, matrix)
        }
    }
}
