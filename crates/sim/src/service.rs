//! The service layer — many controller sessions behind one front.
//!
//! A production allocator is not one replay loop: it hosts many tenant
//! sessions at once, each an independent [`DatacenterController`] over
//! its own fleet slice, and serves their event streams concurrently.
//! [`SessionHost`] is that front: it owns N session configurations,
//! takes one interleaved schedule of [`SessionEvent`]s, dispatches
//! each event to its session on a small worker pool
//! (`session % workers` partitioning), and merges the per-session
//! terminal reports into a [`ServiceReport`].
//!
//! **Determinism is the contract.** Sessions never share state — a
//! worker owns every event of each session it is assigned and replays
//! them in schedule order — so the merged report is a pure function of
//! the schedule: the same schedule on 1 worker and on 8 workers is
//! bit-identical (pinned by the `service` test suite). Concurrency
//! only changes wall-clock time, never results.
//!
//! The free functions bridge from the workload layer:
//! [`lifecycle_events`] lowers a churn [`Lifecycle`] over a [`VmFleet`]
//! into the exact fault-free [`VmEvent`] stream the batch engine
//! ([`Scenario::run`](crate::Scenario::run)) would deliver, and
//! [`interleave`] round-robins per-session streams into one host
//! schedule.
//!
//! ```
//! use cavm_sim::service::{interleave, lifecycle_events, SessionHost};
//! use cavm_sim::{Policy, ScenarioBuilder};
//! use cavm_workload::datacenter::DatacenterTraceBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fleet = DatacenterTraceBuilder::new(6)
//!     .groups(2)
//!     .seed(7)
//!     .duration_hours(2.0)
//!     .build()?;
//! let scenario = ScenarioBuilder::new(fleet.clone())
//!     .servers(8)
//!     .policy(Policy::Bfd)
//!     .build()?;
//! // Two identical tenants, everything arriving at t = 0.
//! let horizon = 2 * 720;
//! let events = lifecycle_events(
//!     &fleet,
//!     &cavm_workload::lifecycle::Lifecycle::all_at_start(fleet.len(), horizon)?,
//!     scenario.period_samples(),
//! )?;
//! let host = SessionHost::new(vec![scenario.controller_config(); 2], 2)?;
//! let report = host.run(interleave(&[events.clone(), events]))?;
//! assert_eq!(report.sessions.len(), 2);
//! assert_eq!(report.merged.sessions, 2);
//! # Ok(())
//! # }
//! ```
//!
//! [`Lifecycle`]: cavm_workload::lifecycle::Lifecycle
//! [`VmFleet`]: cavm_workload::datacenter::VmFleet

use crate::controller::{ControllerConfig, DatacenterController, NullSink, VmEvent};
use crate::report::SimReport;
use crate::SimError;
use cavm_workload::datacenter::VmFleet;
use cavm_workload::lifecycle::Lifecycle;
use std::thread;

/// One schedule entry for a [`SessionHost`]: an event addressed to one
/// hosted session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionEvent {
    /// Index of the target session (`0..host.sessions()`).
    pub session: usize,
    /// The controller event to apply to it.
    pub event: VmEvent,
}

/// The merged cross-session summary of a [`SessionHost::run`].
///
/// Scalar counters sum across sessions; the violation headline takes
/// the worst session (a per-tenant SLA is not diluted by quieter
/// neighbours).
#[derive(Debug, Clone, PartialEq)]
pub struct MergedReport {
    /// Sessions that completed.
    pub sessions: usize,
    /// Total energy across sessions, in joules.
    pub energy_joules: f64,
    /// Worst per-period violation percentage across sessions.
    pub max_violation_percent: f64,
    /// Total over-utilized samples across sessions.
    pub violation_instances: usize,
    /// Total mid-period incremental admissions across sessions.
    pub online_admissions: usize,
    /// Total off-cycle re-packs across sessions.
    pub offcycle_repacks: usize,
    /// Total cross-period migrations across sessions.
    pub migrations: usize,
    /// Total sink-adapter drops folded into session summaries.
    pub sink_dropped_events: u64,
    /// Total server failures injected across sessions.
    pub server_failures: usize,
    /// Total emergency evacuations across sessions.
    pub evacuations: usize,
    /// Summed per-session deferred-queue peaks (an upper bound on the
    /// true simultaneous peak, like the sharded merge).
    pub deferred_peak: usize,
}

impl MergedReport {
    fn from_sessions(sessions: &[SimReport]) -> Self {
        Self {
            sessions: sessions.len(),
            energy_joules: sessions.iter().map(|r| r.energy.joules()).sum(),
            max_violation_percent: sessions
                .iter()
                .map(|r| r.max_violation_percent)
                .fold(0.0, f64::max),
            violation_instances: sessions.iter().map(|r| r.violation_instances).sum(),
            online_admissions: sessions.iter().map(|r| r.online_admissions).sum(),
            offcycle_repacks: sessions.iter().map(|r| r.offcycle_repacks).sum(),
            migrations: sessions.iter().map(|r| r.total_migrations()).sum(),
            sink_dropped_events: sessions.iter().map(|r| r.sink_dropped_events).sum(),
            server_failures: sessions.iter().map(|r| r.server_failures).sum(),
            evacuations: sessions.iter().map(|r| r.evacuations).sum(),
            deferred_peak: sessions.iter().map(|r| r.deferred_peak).sum(),
        }
    }
}

/// Everything a [`SessionHost::run`] produced: the per-session
/// terminal reports (indexed by session id) and their merge.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// One terminal [`SimReport`] per hosted session, in session-id
    /// order.
    pub sessions: Vec<SimReport>,
    /// The cross-session aggregate.
    pub merged: MergedReport,
}

/// A multi-session front over N independent controller sessions. See
/// the [module docs](self).
#[derive(Debug, Clone)]
pub struct SessionHost {
    configs: Vec<ControllerConfig>,
    workers: usize,
}

impl SessionHost {
    /// A host over one session per entry of `configs`, replaying on a
    /// pool of `workers` threads. Session `s` is pinned to worker
    /// `s % workers`, so the partition — and therefore every result —
    /// is independent of thread scheduling.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `configs` is empty
    /// or `workers` is zero. Per-session knob validation happens when
    /// [`run`](Self::run) opens the controllers.
    pub fn new(configs: Vec<ControllerConfig>, workers: usize) -> crate::Result<Self> {
        if configs.is_empty() {
            return Err(SimError::InvalidParameter(
                "session host needs at least one session",
            ));
        }
        if workers == 0 {
            return Err(SimError::InvalidParameter(
                "session host needs at least one worker",
            ));
        }
        Ok(Self { configs, workers })
    }

    /// Hosted sessions.
    pub fn sessions(&self) -> usize {
        self.configs.len()
    }

    /// Pool size (workers actually spawned per run is
    /// `min(workers, sessions)`; idle threads are never created).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Replays `schedule` across the hosted sessions and returns the
    /// per-session reports plus their merge. Each session's events are
    /// applied in schedule order by its owning worker, the session is
    /// finished, and its terminal report collected. The host itself is
    /// untouched — `run` can be called again (every call opens fresh
    /// controller sessions from the stored configs).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSession`] (before any session runs)
    /// if the schedule addresses a session the host does not own. A
    /// failing session aborts the run with its error; when several
    /// sessions fail, the error of the smallest session id is returned
    /// — deterministic regardless of worker count.
    pub fn run(&self, schedule: Vec<SessionEvent>) -> crate::Result<ServiceReport> {
        let sessions = self.configs.len();
        for entry in &schedule {
            if entry.session >= sessions {
                return Err(SimError::UnknownSession {
                    session: entry.session,
                    sessions,
                });
            }
        }
        // Partition the schedule per session, preserving order.
        let mut per_session: Vec<Vec<VmEvent>> = (0..sessions).map(|_| Vec::new()).collect();
        for entry in schedule {
            per_session[entry.session].push(entry.event);
        }
        // Static session → worker pinning: deterministic by design.
        let workers = self.workers.min(sessions);
        let mut jobs: Vec<Vec<(usize, ControllerConfig, Vec<VmEvent>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (session, events) in per_session.into_iter().enumerate() {
            jobs[session % workers].push((session, self.configs[session].clone(), events));
        }
        let mut results: Vec<(usize, crate::Result<SimReport>)> = Vec::with_capacity(sessions);
        thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|job| {
                    scope.spawn(move || {
                        job.into_iter()
                            .map(|(session, config, events)| {
                                (session, Self::run_session(config, events))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                results.extend(handle.join().expect("session worker panicked"));
            }
        });
        results.sort_by_key(|(session, _)| *session);
        let mut reports = Vec::with_capacity(sessions);
        for (_, result) in results {
            reports.push(result?);
        }
        let merged = MergedReport::from_sessions(&reports);
        Ok(ServiceReport {
            sessions: reports,
            merged,
        })
    }

    /// One session, start to finish, on the owning worker thread.
    fn run_session(config: ControllerConfig, events: Vec<VmEvent>) -> crate::Result<SimReport> {
        let mut controller = DatacenterController::new(config)?;
        for event in events {
            controller.apply(event, &mut NullSink)?;
        }
        controller.finish(&mut NullSink)?;
        Ok(controller.report())
    }
}

/// Lowers a churn [`Lifecycle`] over `fleet` into the exact fault-free
/// event stream the batch engine would deliver: per sample, departures
/// first (sorted by `(sample, id)`), then arrivals in entry order with
/// the trace sliced from arrival to departure and the lease attached,
/// then the [`VmEvent::Tick`]. The horizon is truncated to whole
/// placement periods, exactly like
/// [`Scenario::run`](crate::Scenario::run).
///
/// Driving a fresh controller with this stream is bit-identical to the
/// engine replay of the same scenario (pinned by this module's tests),
/// which is what lets a [`SessionHost`] schedule reproduce engine
/// results session by session.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] when `period_samples` is
/// zero, and propagates trace-slicing errors.
pub fn lifecycle_events(
    fleet: &VmFleet,
    lifecycle: &Lifecycle,
    period_samples: usize,
) -> crate::Result<Vec<VmEvent>> {
    if period_samples == 0 {
        return Err(SimError::InvalidParameter(
            "period_samples must be positive",
        ));
    }
    let n_samples = fleet.vms().first().map_or(0, |vm| vm.fine.len());
    let total = (n_samples / period_samples) * period_samples;
    let entries = lifecycle.entries();
    let mut departures: Vec<(usize, usize)> = entries
        .iter()
        .filter_map(|e| e.departure_sample.map(|d| (d, e.id)))
        .filter(|&(d, _)| d < total)
        .collect();
    departures.sort_unstable();

    let mut events = Vec::with_capacity(total + entries.len() * 2);
    let mut next_arrival = 0usize;
    let mut next_departure = 0usize;
    for k in 0..total {
        while next_departure < departures.len() && departures[next_departure].0 == k {
            events.push(VmEvent::Depart {
                id: departures[next_departure].1,
            });
            next_departure += 1;
        }
        while next_arrival < entries.len() && entries[next_arrival].arrival_sample == k {
            let entry = &entries[next_arrival];
            let end = entry.departure_sample.map_or(total, |d| d.min(total));
            let trace = fleet.vms()[entry.id]
                .fine
                .slice(entry.arrival_sample, end)
                .map_err(SimError::Trace)?;
            let lease_samples = entry
                .departure_sample
                .map(|d| d.saturating_sub(entry.arrival_sample));
            events.push(VmEvent::Arrive {
                id: entry.id,
                trace,
                lease_samples,
            });
            next_arrival += 1;
        }
        events.push(VmEvent::Tick);
    }
    Ok(events)
}

/// Round-robins per-session event streams into one [`SessionHost`]
/// schedule: position k of every session (in session order) before
/// position k+1 of any. Cross-session order is cosmetic — sessions are
/// isolated, so any interleaving that preserves each session's own
/// order produces the same [`ServiceReport`] — but a deterministic one
/// keeps schedules comparable across runs.
pub fn interleave(sessions: &[Vec<VmEvent>]) -> Vec<SessionEvent> {
    let mut schedule = Vec::with_capacity(sessions.iter().map(Vec::len).sum());
    let longest = sessions.iter().map(Vec::len).max().unwrap_or(0);
    for k in 0..longest {
        for (session, events) in sessions.iter().enumerate() {
            if let Some(event) = events.get(k) {
                schedule.push(SessionEvent {
                    session,
                    event: event.clone(),
                });
            }
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Policy;
    use crate::ScenarioBuilder;
    use cavm_workload::datacenter::DatacenterTraceBuilder;
    use cavm_workload::lifecycle::{ArrivalProcess, LifecycleBuilder, LifetimeModel};

    fn fleet(vms: usize, hours: f64, seed: u64) -> VmFleet {
        DatacenterTraceBuilder::new(vms)
            .groups((vms / 3).max(1))
            .seed(seed)
            .duration_hours(hours)
            .build()
            .unwrap()
    }

    fn churn(vms: usize, horizon: usize, seed: u64) -> Lifecycle {
        LifecycleBuilder::new(vms, horizon)
            .seed(seed)
            .arrivals(ArrivalProcess::Poisson {
                mean_gap_samples: 90.0,
            })
            .lifetimes(LifetimeModel::Exponential {
                mean_samples: 1200.0,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn lifecycle_events_replay_bit_identical_to_the_engine() {
        let fleet = fleet(8, 4.0, 11);
        let horizon = fleet.vms()[0].fine.len();
        let lifecycle = churn(8, horizon, 11);
        let scenario = ScenarioBuilder::new(fleet.clone())
            .servers(10)
            .policy(Policy::Proposed(Default::default()))
            .lifecycle(lifecycle.clone())
            .build()
            .unwrap();
        let engine_report = scenario.run().unwrap();

        let events = lifecycle_events(&fleet, &lifecycle, scenario.period_samples()).unwrap();
        let mut controller = scenario.controller().unwrap();
        for event in events {
            controller.apply(event, &mut NullSink).unwrap();
        }
        controller.finish(&mut NullSink).unwrap();
        assert_eq!(controller.report(), engine_report);
    }

    #[test]
    fn lifecycle_events_closed_world_matches_batch() {
        let fleet = fleet(6, 2.0, 3);
        let scenario = ScenarioBuilder::new(fleet.clone())
            .servers(8)
            .policy(Policy::Bfd)
            .build()
            .unwrap();
        let batch = scenario.run().unwrap();
        let horizon = fleet.vms()[0].fine.len();
        let events = lifecycle_events(
            &fleet,
            &Lifecycle::all_at_start(fleet.len(), horizon).unwrap(),
            720,
        )
        .unwrap();
        let mut controller = scenario.controller().unwrap();
        for event in events {
            controller.apply(event, &mut NullSink).unwrap();
        }
        controller.finish(&mut NullSink).unwrap();
        assert_eq!(controller.report(), batch);
    }

    #[test]
    fn one_session_host_equals_direct_run() {
        let fleet = fleet(6, 2.0, 9);
        let horizon = fleet.vms()[0].fine.len();
        let lifecycle = churn(6, horizon, 9);
        let scenario = ScenarioBuilder::new(fleet.clone())
            .servers(8)
            .lifecycle(lifecycle.clone())
            .build()
            .unwrap();
        let direct = scenario.run().unwrap();
        let events = lifecycle_events(&fleet, &lifecycle, scenario.period_samples()).unwrap();
        let host = SessionHost::new(vec![scenario.controller_config()], 4).unwrap();
        let service = host.run(interleave(&[events])).unwrap();
        assert_eq!(service.sessions.len(), 1);
        assert_eq!(service.sessions[0], direct);
        assert_eq!(service.merged.sessions, 1);
        assert_eq!(service.merged.energy_joules, direct.energy.joules());
    }

    #[test]
    fn merged_report_sums_and_maxes_across_sessions() {
        let fleet_a = fleet(6, 2.0, 1);
        let fleet_b = fleet(9, 2.0, 2);
        let scenario_a = ScenarioBuilder::new(fleet_a.clone())
            .servers(8)
            .build()
            .unwrap();
        let scenario_b = ScenarioBuilder::new(fleet_b.clone())
            .servers(12)
            .policy(Policy::Ffd)
            .build()
            .unwrap();
        let all_at_start = |fleet: &VmFleet| {
            Lifecycle::all_at_start(fleet.len(), fleet.vms()[0].fine.len()).unwrap()
        };
        let schedule = interleave(&[
            lifecycle_events(&fleet_a, &all_at_start(&fleet_a), 720).unwrap(),
            lifecycle_events(&fleet_b, &all_at_start(&fleet_b), 720).unwrap(),
        ]);
        let host = SessionHost::new(
            vec![
                scenario_a.controller_config(),
                scenario_b.controller_config(),
            ],
            2,
        )
        .unwrap();
        let service = host.run(schedule).unwrap();
        let merged = &service.merged;
        assert_eq!(merged.sessions, 2);
        let expect_joules: f64 = service.sessions.iter().map(|r| r.energy.joules()).sum();
        assert_eq!(merged.energy_joules, expect_joules);
        assert_eq!(
            merged.violation_instances,
            service
                .sessions
                .iter()
                .map(|r| r.violation_instances)
                .sum::<usize>()
        );
        assert_eq!(
            merged.migrations,
            service
                .sessions
                .iter()
                .map(|r| r.total_migrations())
                .sum::<usize>()
        );
        let worst = service
            .sessions
            .iter()
            .map(|r| r.max_violation_percent)
            .fold(0.0, f64::max);
        assert_eq!(merged.max_violation_percent, worst);
    }

    #[test]
    fn unknown_session_is_rejected_before_anything_runs() {
        let fleet = fleet(3, 2.0, 5);
        let scenario = ScenarioBuilder::new(fleet).servers(4).build().unwrap();
        let host = SessionHost::new(vec![scenario.controller_config()], 1).unwrap();
        let err = host
            .run(vec![SessionEvent {
                session: 3,
                event: VmEvent::Tick,
            }])
            .unwrap_err();
        assert_eq!(
            err,
            SimError::UnknownSession {
                session: 3,
                sessions: 1
            }
        );
    }

    #[test]
    fn empty_configs_and_zero_workers_are_rejected() {
        assert!(matches!(
            SessionHost::new(vec![], 2),
            Err(SimError::InvalidParameter(_))
        ));
        let fleet = fleet(3, 2.0, 5);
        let scenario = ScenarioBuilder::new(fleet).servers(4).build().unwrap();
        assert!(matches!(
            SessionHost::new(vec![scenario.controller_config()], 0),
            Err(SimError::InvalidParameter(_))
        ));
    }

    #[test]
    fn more_workers_than_sessions_is_fine_and_deterministic() {
        let fleet = fleet(6, 2.0, 4);
        let horizon = fleet.vms()[0].fine.len();
        let events = lifecycle_events(
            &fleet,
            &Lifecycle::all_at_start(fleet.len(), horizon).unwrap(),
            720,
        )
        .unwrap();
        let scenario = ScenarioBuilder::new(fleet).servers(8).build().unwrap();
        let configs = vec![scenario.controller_config(); 3];
        let narrow = SessionHost::new(configs.clone(), 1).unwrap();
        let wide = SessionHost::new(configs, 16).unwrap();
        let schedule = interleave(&[events.clone(), events.clone(), events]);
        assert_eq!(
            narrow.run(schedule.clone()).unwrap(),
            wide.run(schedule).unwrap()
        );
    }

    #[test]
    fn failing_session_reports_the_smallest_session_id() {
        let fleet = fleet(3, 2.0, 5);
        let scenario = ScenarioBuilder::new(fleet).servers(4).build().unwrap();
        let host = SessionHost::new(vec![scenario.controller_config(); 4], 2).unwrap();
        // Sessions 1 and 3 both depart a VM that never arrived.
        let schedule = vec![
            SessionEvent {
                session: 3,
                event: VmEvent::Depart { id: 99 },
            },
            SessionEvent {
                session: 1,
                event: VmEvent::Depart { id: 7 },
            },
        ];
        assert_eq!(
            host.run(schedule).unwrap_err(),
            SimError::UnknownVm { id: 7 },
            "smallest failing session id wins, regardless of schedule order"
        );
    }

    #[test]
    fn interleave_round_robins_and_preserves_per_session_order() {
        let a = vec![VmEvent::Tick, VmEvent::Depart { id: 0 }];
        let b = vec![VmEvent::Tick];
        let schedule = interleave(&[a, b]);
        assert_eq!(schedule.len(), 3);
        assert_eq!(
            (
                schedule[0].session,
                schedule[1].session,
                schedule[2].session
            ),
            (0, 1, 0)
        );
        assert_eq!(schedule[2].event, VmEvent::Depart { id: 0 });
    }
}
