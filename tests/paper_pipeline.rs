//! Cross-crate integration tests: the paper's full pipelines at reduced
//! scale, with golden-value corridors on the headline claims.

use cavm::prelude::*;

fn fleet(seed: u64) -> VmFleet {
    DatacenterTraceBuilder::new(45)
        .groups(6)
        .seed(seed)
        .duration_hours(6.0)
        .idle_fraction(0.3)
        .vm_scale_range(0.35, 1.05)
        .build()
        .expect("builder parameters are valid")
        .select_top(15)
}

fn run(fleet: &VmFleet, policy: Policy, mode: DvfsMode) -> SimReport {
    ScenarioBuilder::new(fleet.clone())
        .servers(12)
        .policy(policy)
        .dvfs_mode(mode)
        .build()
        .expect("scenario is valid")
        .run()
        .expect("scenario completes")
}

#[test]
fn setup2_static_proposed_beats_bfd_on_power() {
    let fleet = fleet(2013);
    let bfd = run(&fleet, Policy::Bfd, DvfsMode::Static);
    let proposed = run(
        &fleet,
        Policy::Proposed(Default::default()),
        DvfsMode::Static,
    );
    let ratio = proposed
        .energy
        .normalized_to(&bfd.energy)
        .expect("baseline non-zero");
    assert!(ratio < 1.0, "proposed/bfd power ratio {ratio} must be < 1");
    assert!(
        ratio > 0.7,
        "ratio {ratio} suspiciously low — check the power model"
    );
}

#[test]
fn setup2_proposed_reduces_violations() {
    // Average over several seeds: individual small fleets are noisy.
    let mut bfd_total = 0.0;
    let mut prop_total = 0.0;
    for seed in [2013, 2014, 2015] {
        let fleet = fleet(seed);
        bfd_total += run(&fleet, Policy::Bfd, DvfsMode::Static).max_violation_percent;
        prop_total += run(
            &fleet,
            Policy::Proposed(Default::default()),
            DvfsMode::Static,
        )
        .max_violation_percent;
    }
    assert!(
        prop_total <= bfd_total,
        "proposed violations {prop_total} must not exceed bfd {bfd_total}"
    );
}

#[test]
fn setup2_pcp_degenerates_to_bfd() {
    let fleet = fleet(2013);
    let bfd = run(&fleet, Policy::Bfd, DvfsMode::Static);
    let pcp = run(
        &fleet,
        Policy::Pcp {
            envelope_percentile: 90.0,
            affinity_threshold: 0.10,
        },
        DvfsMode::Static,
    );
    // The paper: PCP collapses to one cluster on bursty traces and then
    // "behaves exactly same with BFD".
    let single = pcp
        .pcp_single_cluster_periods()
        .expect("pcp reports clusters");
    assert!(
        single >= pcp.periods.len() - 1,
        "PCP should degenerate in (almost) all periods, got {single}/{}",
        pcp.periods.len()
    );
    let ratio = pcp
        .energy
        .normalized_to(&bfd.energy)
        .expect("baseline non-zero");
    assert!(
        (ratio - 1.0).abs() < 0.02,
        "PCP/BFD power ratio {ratio} should be ≈ 1"
    );
}

#[test]
fn setup2_runs_are_deterministic() {
    let fleet = fleet(99);
    let a = run(
        &fleet,
        Policy::Proposed(Default::default()),
        DvfsMode::Static,
    );
    let b = run(
        &fleet,
        Policy::Proposed(Default::default()),
        DvfsMode::Static,
    );
    assert_eq!(a, b);
}

#[test]
fn setup2_dynamic_mode_narrows_the_power_gap() {
    let fleet = fleet(2013);
    let bfd_s = run(&fleet, Policy::Bfd, DvfsMode::Static);
    let prop_s = run(
        &fleet,
        Policy::Proposed(Default::default()),
        DvfsMode::Static,
    );
    let bfd_d = run(
        &fleet,
        Policy::Bfd,
        DvfsMode::Dynamic {
            interval_samples: 12,
        },
    );
    let prop_d = run(
        &fleet,
        Policy::Proposed(Default::default()),
        DvfsMode::Dynamic {
            interval_samples: 12,
        },
    );
    let gap_static = 1.0
        - prop_s
            .energy
            .normalized_to(&bfd_s.energy)
            .expect("non-zero");
    let gap_dynamic = 1.0
        - prop_d
            .energy
            .normalized_to(&bfd_d.energy)
            .expect("non-zero");
    // Table II: 13.7% static gap vs 4.2% dynamic gap.
    assert!(
        gap_dynamic < gap_static,
        "dynamic gap {gap_dynamic} should be smaller than static {gap_static}"
    );
}

#[test]
fn setup1_placement_ordering_holds() {
    let config = Setup1Config {
        duration_s: 400.0,
        wave_period_s: 400.0,
        warmup_s: 40.0,
        ..Setup1Config::default()
    };
    let seg = run_setup1(Setup1Placement::Segregated, &config).expect("runs");
    let unc = run_setup1(Setup1Placement::SharedUncorrelated, &config).expect("runs");
    let cor = run_setup1(Setup1Placement::SharedCorrelated, &config).expect("runs");
    for c in 0..2 {
        assert!(
            unc.p90_response[c] < seg.p90_response[c],
            "sharing must beat segregation"
        );
        assert!(
            cor.p90_response[c] < unc.p90_response[c] * 1.05,
            "correlation-aware sharing must not lose to blind sharing"
        );
    }
}

#[test]
fn fig3_bound_holds_on_sampled_sets() {
    let fleet = fleet(7);
    let traces = fleet.traces();
    let matrix = CostMatrix::from_traces(&traces, Reference::Peak).expect("uniform traces");
    let mut rng = SimRng::new(5);
    let mut worst_margin = f64::INFINITY;
    for _ in 0..60 {
        let size = 2 + rng.below(4);
        let mut ids: Vec<usize> = (0..traces.len()).collect();
        rng.shuffle(&mut ids);
        ids.truncate(size);
        let members: Vec<(usize, f64)> = ids
            .iter()
            .map(|&id| {
                (
                    id,
                    Reference::Peak.of_series(traces[id]).expect("non-empty"),
                )
            })
            .collect();
        let x = server_cost(&members, &matrix);
        let sum: f64 = members.iter().map(|&(_, u)| u).sum();
        let set: Vec<&TimeSeries> = ids.iter().map(|&id| traces[id]).collect();
        let y = sum / TimeSeries::sum_of(&set).expect("uniform").peak().max(1e-12);
        worst_margin = worst_margin.min(y - x);
    }
    // Eqn 2 is a lower bound on the true aggregation ratio (Fig 3);
    // allow a small tolerance for percentile/streaming noise.
    assert!(worst_margin > -0.05, "min(Y - X) = {worst_margin}");
}

#[test]
fn microarch_table1_claim_holds() {
    let machine = Machine::opteron_like().expect("preset is valid");
    let (solo, paired) = machine
        .colocation_study(
            &StreamProfile::web_search(),
            &StreamProfile::parsec_corunners(),
            1_000_000,
            3,
        )
        .expect("study completes");
    for (name, m) in &paired {
        let delta = (m.ipc - solo.ipc).abs() / solo.ipc;
        assert!(
            delta < 0.05,
            "{name}: co-location moved web-search IPC by {delta}"
        );
    }
}

#[test]
fn prelude_covers_the_pipeline_types() {
    // Compile-time check that the prelude exposes what the examples use.
    fn assert_impl<T: ?Sized>() {}
    assert_impl::<dyn AllocationPolicy>();
    assert_impl::<dyn Predictor>();
    assert_impl::<dyn PowerModel>();
    assert_impl::<CostMetric>();
    assert_impl::<PearsonStream>();
    assert_impl::<BfdPolicy>();
    assert_impl::<FfdPolicy>();
    assert_impl::<PcpPolicy>();
    assert_impl::<EwmaPredictor>();
    assert_impl::<MovingAveragePredictor>();
    assert_impl::<LastValuePredictor>();
    assert_impl::<Envelope>();
    assert_impl::<EnergyMeter>();
    assert_impl::<Frequency>();
    assert_impl::<ClientWave>();
    assert_impl::<WebSearchCluster>();
    assert_impl::<DailyArchetype>();
    assert_impl::<ClusterSimConfig>();
    assert_impl::<Scenario>();
}
