//! An online datacenter under churn: VMs lease in and out all day
//! while the correlation-aware controller keeps placing them.
//!
//! Demonstrates the event-driven API the batch replay is built on:
//! the workload is a `SyntheticTrace` — two apps with their own
//! arrival, lease, and demand distributions, streamed through the
//! `TraceDataset` surface into `ScenarioBuilder::dataset` (the same
//! entry point a real Azure/Huawei CSV reader plugs into) — and a
//! custom `MetricSink` narrates the run live: periods as they
//! complete, incremental (lease-aware) mid-period admissions,
//! fragmentation-fired off-cycle re-packs under the adaptive
//! `RepackTrigger::Hybrid` schedule with a composed `QosGuard` (and
//! the `SlackController`'s live slack on every re-pack event),
//! per-class energy — before the terminal `SimReport` prints the
//! totals. A `FaultPlan` additionally knocks servers out mid-run:
//! watch residents evacuate the failed box, the controller run
//! degraded while capacity is down, and recovery hand the fleet back.
//!
//! Run with: `cargo run --release --example online_churn`

use cavm::prelude::*;

/// Prints the session as it unfolds.
struct Narrator {
    admissions: usize,
}

impl MetricSink for Narrator {
    fn on_period(&mut self, record: &PeriodRecord) {
        println!(
            "period {:>2}: {:>2} servers, worst violation {:>5.1}%, {} migrations",
            record.period,
            record.servers_used,
            100.0 * record.max_violation_ratio,
            record.migrations
        );
    }

    fn on_admit(&mut self, sample: usize, vm: usize, server: usize) {
        self.admissions += 1;
        println!(
            "  t={:>5}  vm{vm:02} arrived mid-period -> admitted to server {server} (no re-pack)",
            sample
        );
    }

    fn on_repack(&mut self, event: &RepackEvent) {
        let slack = event
            .slack_after
            .map_or_else(String::new, |s| format!(", slack now {s}"));
        match event.reason {
            RepackReason::Periodic => {}
            RepackReason::Fragmentation { estimate, active } => println!(
                "  t={:>5}  fragmentation re-pack: {} active servers vs bound {} -> {} \
                 ({} migrations{slack})",
                event.sample, active, estimate, event.servers_after, event.migrations
            ),
            RepackReason::QosGuard { violations } => println!(
                "  t={:>5}  QoS guard re-pack: worst server at {} over-capacity samples, \
                 {} hotspot move(s){slack}",
                event.sample, violations, event.migrations
            ),
            RepackReason::Overcommit { servers } => println!(
                "  t={:>5}  boundary capacity check: {} overcommitted server(s) trimmed \
                 ({} migrations)",
                event.sample, servers, event.migrations
            ),
            RepackReason::Evacuation { server } => println!(
                "  t={:>5}  emergency evacuation of failed server {server}: {} resident(s) \
                 moved or deferred",
                event.sample, event.migrations
            ),
            // Only ever emitted on a what-if fork, never by a live
            // session — unreachable in this replay.
            RepackReason::WhatIf => {}
        }
    }

    fn on_server_fail(&mut self, sample: usize, server: usize, residents: usize) {
        println!("  t={sample:>5}  server {server} FAILED with {residents} resident VM(s)");
    }

    fn on_server_recover(&mut self, sample: usize, server: usize) {
        println!("  t={sample:>5}  server {server} recovered — capacity restored");
    }

    fn on_class_energy(&mut self, period: usize, _class: usize, name: &str, period_joules: f64) {
        if period_joules > 0.0 {
            println!(
                "  period {period}: class {name} burned {:.2} Wh",
                period_joules / 3600.0
            );
        }
    }

    fn on_summary(&mut self, report: &SimReport) {
        println!(
            "\n=== {} === {:.2} kWh, max violation {:.2}%, {} migrations, {} online \
             admissions, {} off-cycle re-packs, {} failures survived ({} evacuations, \
             deferred-queue peak {})",
            report.policy,
            report.energy.kilowatt_hours(),
            report.max_violation_percent,
            report.total_migrations(),
            report.online_admissions,
            report.offcycle_repacks,
            report.server_failures,
            report.evacuations,
            report.deferred_peak
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six hours of correlated demand on a 5 s grid, described as a
    // dataset: two apps with their own arrival, lease, and demand
    // distributions. Swapping in a real cloud trace is a one-line
    // change — `AzureTraceReader::open(...)` implements the same
    // `TraceDataset` trait this generator streams through.
    let horizon = 4_320; // 6 h at 5 s/sample
    let mut dataset = SyntheticTraceBuilder::new(horizon)
        .seed(17)
        // Interactive tier: leases arrive every ~20 minutes, hold
        // 1.5–4 hours, and share a correlated mid-afternoon peak —
        // exactly the structure the proposed policy anti-correlates.
        .app(SyntheticApp {
            name: "web".into(),
            vm_count: 8,
            arrivals: ArrivalProcess::Poisson {
                mean_gap_samples: 240.0,
            },
            lifetimes: LifetimeModel::Uniform {
                min_samples: 1_080,
                max_samples: 2_880,
            },
            demand: DemandModel::Archetype {
                archetype: DailyArchetype::Diurnal {
                    base: 0.4,
                    peak: 2.2,
                    peak_hour: 3.0,
                    width_h: 1.2,
                },
                cv: 0.2,
            },
        })
        // Batch tier: shorter uncorrelated jobs that fill the troughs.
        .app(SyntheticApp {
            name: "batch".into(),
            vm_count: 4,
            arrivals: ArrivalProcess::Poisson {
                mean_gap_samples: 300.0,
            },
            lifetimes: LifetimeModel::Uniform {
                min_samples: 720,
                max_samples: 2_160,
            },
            demand: DemandModel::Uniform { lo: 0.2, hi: 1.2 },
        })
        .build()?;

    // `assemble` drains any `TraceDataset` into the engine's native
    // workload pair: a `VmFleet` of full-horizon traces plus the
    // `Lifecycle` that says when each lease is actually live.
    let (fleet, lifecycle) = assemble(&mut dataset)?;
    println!(
        "schedule: {} VMs, peak concurrency {}\n",
        lifecycle.len(),
        lifecycle.max_concurrent()
    );

    // Hardware is mortal: each of the 10 servers fails independently
    // about once per simulated week and takes ~25 minutes to repair,
    // and the whole rack shares one correlated outage process.
    let faults = FaultPlanBuilder::new(horizon)
        .seed(17)
        .block(
            0,
            10,
            FaultModel {
                mtbf_samples: 9_000.0,
                mttr_samples: 300.0,
                outage_mtbf_samples: Some(60_000.0),
                outage_mttr_samples: 120.0,
            },
        )
        .build()?;
    println!(
        "fault plan: {} scheduled server failures",
        faults.failures()
    );

    let mut narrator = Narrator { admissions: 0 };
    let scenario = ScenarioBuilder::new(fleet)
        .servers(10)
        .policy(Policy::Proposed(Default::default()))
        // Consolidate off-cycle as soon as departures leave a whole
        // server's worth of slack, on top of the hourly clock; let the
        // slack adapt to what re-packs actually buy, and move hotspots
        // off any server violating more than 8% of a period.
        .repack_trigger(RepackTrigger::Hybrid { slack: 1 })
        .adaptive_slack_max(3)
        .qos_guard(QosGuard {
            violation_ratio: 0.08,
        })
        .lifecycle(lifecycle)
        .faults(faults)
        .build()?;
    scenario.run_with_sink(&mut narrator)?;

    println!("\n{} incremental admissions total", narrator.admissions);
    Ok(())
}
