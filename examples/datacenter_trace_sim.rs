//! Datacenter trace replay (the paper's Setup-2, reduced scale).
//!
//! Replays a synthetic day of datacenter traces under BFD and the
//! correlation-aware policy, printing the per-period story: servers
//! used, frequency choices, violations and migrations — and the final
//! Table II-style comparison.
//!
//! Run with: `cargo run --release --example datacenter_trace_sim`

use cavm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 16 VMs in 5 correlated groups, 8 hours (8 placement periods).
    let fleet = DatacenterTraceBuilder::new(16)
        .groups(5)
        .seed(41)
        .duration_hours(8.0)
        .vm_scale_range(0.35, 1.05)
        .build()?;

    let mut reports = Vec::new();
    for policy in [Policy::Bfd, Policy::Proposed(Default::default())] {
        let report = ScenarioBuilder::new(fleet.clone())
            .servers(12)
            .policy(policy)
            .dvfs_mode(DvfsMode::Static)
            .build()?
            .run()?;

        println!("=== {} ===", report.policy);
        println!("period  servers  worst-violation  migrations");
        for p in &report.periods {
            println!(
                "{:>6}  {:>7}  {:>14.1}%  {:>10}",
                p.period,
                p.servers_used,
                100.0 * p.max_violation_ratio,
                p.migrations
            );
        }
        println!(
            "energy {:.1} kWh, max violation {:.1}%, total migrations {}\n",
            report.energy.kilowatt_hours(),
            report.max_violation_percent,
            report.total_migrations()
        );
        reports.push(report);
    }

    let ratio = reports[1]
        .energy
        .normalized_to(&reports[0].energy)
        .expect("baseline consumed energy");
    println!("normalized power (Proposed / BFD): {ratio:.3}");
    println!(
        "violations: BFD {:.1}% vs Proposed {:.1}%",
        reports[0].max_violation_percent, reports[1].max_violation_percent
    );
    Ok(())
}
