//! Shared-cache interference study (the paper's §III-B / Table I).
//!
//! Why is core sharing safe for scale-out workloads? Because their
//! working sets dwarf every on-chip cache: a co-runner cannot make the
//! cache behaviour much worse. This example runs the web-search workload
//! alone and against each PARSEC co-runner, then shows the contrast — a
//! cache-resident workload that co-location genuinely hurts.
//!
//! Run with: `cargo run --release --example colocation_interference`

use cavm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::opteron_like()?;
    let instructions = 2_000_000;

    let (solo, paired) = machine.colocation_study(
        &StreamProfile::web_search(),
        &StreamProfile::parsec_corunners(),
        instructions,
        1,
    )?;
    println!(
        "web search alone : IPC {:.2}, L2 MPKI {:.2}, L2 miss {:.1}%",
        solo.ipc,
        solo.l2_mpki,
        100.0 * solo.l2_miss_rate
    );
    for (name, m) in &paired {
        println!(
            "  w/ {name:<13}: IPC {:.2}, L2 MPKI {:.2}, L2 miss {:.1}%  (Δipc {:+.1}%)",
            m.ipc,
            m.l2_mpki,
            100.0 * m.l2_miss_rate,
            100.0 * (m.ipc - solo.ipc) / solo.ipc
        );
    }

    let resident = StreamProfile::cache_resident();
    let r_solo = machine.run_solo(&resident, instructions, 1)?;
    let (r_paired, _) = machine.run_pair(&resident, &StreamProfile::canneal(), instructions, 1)?;
    println!(
        "\ncache-resident contrast: IPC {:.2} alone → {:.2} w/ canneal ({:+.0}%)",
        r_solo.ipc,
        r_paired.ipc,
        100.0 * (r_paired.ipc - r_solo.ipc) / r_solo.ipc
    );
    println!("→ sharing is free for scale-out workloads, not in general");
    Ok(())
}
