//! Web-search consolidation (the paper's Setup-1 workload).
//!
//! Runs the three placements of Fig 4/5 on the discrete-event cluster
//! simulator, then demonstrates that the correlation-aware allocator
//! *discovers* the good placement by itself from measured utilization
//! traces — no human told it the clusters are anti-phased.
//!
//! Run with: `cargo run --release --example websearch_consolidation`

use cavm::prelude::*;
use cavm_cluster::experiment::setup1_sim_config;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Shortened run so the example finishes quickly; the bench binary
    // exp_fig5 runs the full 20-minute period.
    let config = Setup1Config {
        duration_s: 600.0,
        wave_period_s: 600.0,
        ..Setup1Config::default()
    };

    println!("90th-percentile response time (s) per placement:");
    for placement in [
        Setup1Placement::Segregated,
        Setup1Placement::SharedUncorrelated,
        Setup1Placement::SharedCorrelated,
    ] {
        let out = run_setup1(placement, &config)?;
        println!(
            "  {:<14} cluster1 {:.3}, cluster2 {:.3}   (peak server util {:.2}/{:.2})",
            out.placement.label(),
            out.p90_response[0],
            out.p90_response[1],
            out.peak_server_util[0],
            out.peak_server_util[1],
        );
    }

    // Now let the paper's allocator find the placement itself: measure
    // per-VM utilization in the Shared-UnCorr deployment, build the cost
    // matrix, and re-place.
    let sim_config = setup1_sim_config(Setup1Placement::SharedUncorrelated, &config)?;
    let result = ClusterSim::new(sim_config.clone())?.run()?;
    let traces: Vec<&TimeSeries> = result.vm_utilization.iter().collect();
    let matrix = CostMatrix::from_traces(&traces, Reference::Percentile(99.0))?;
    let vms = VmDescriptor::from_traces(&traces, Reference::Percentile(99.0))?;
    let placement = ProposedPolicy::default().place_uniform(&vms, &matrix, 8.0)?;

    println!("\nallocator's own placement from measured traces:");
    for (s, members) in placement.servers().iter().enumerate() {
        let labels: Vec<String> = members
            .iter()
            .map(|&v| {
                let a = sim_config.assignments[v];
                format!("cluster{}/isn{}", a.cluster + 1, a.isn + 1)
            })
            .collect();
        println!("  server{s}: {}", labels.join(" + "));
    }
    // Cluster-mates (strongly correlated, Fig 1) must be split.
    for cluster in 0..2 {
        let servers: Vec<_> = (0..2)
            .map(|isn| {
                let vm = sim_config
                    .assignments
                    .iter()
                    .position(|a| a.cluster == cluster && a.isn == isn)
                    .expect("assignment exists");
                placement.server_of(vm)
            })
            .collect();
        assert_ne!(
            servers[0], servers[1],
            "allocator must separate the correlated ISNs of cluster {cluster}"
        );
    }
    println!("\n→ the allocator split both clusters across servers, as the paper intends");
    Ok(())
}
