//! Quickstart: the paper's pipeline in ~40 lines.
//!
//! Synthesize correlated VM traces, build the pairwise cost matrix
//! (Eqn 1), place VMs with the correlation-aware heuristic (Fig 2),
//! and pick each server's frequency (Eqn 4).
//!
//! Run with: `cargo run --example quickstart`

use cavm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 12 VMs in 3 correlated groups, 6 hours of 5-second samples.
    let fleet = DatacenterTraceBuilder::new(12)
        .groups(3)
        .seed(7)
        .duration_hours(6.0)
        .build()?;
    let traces = fleet.traces();

    // The paper's streaming correlation cost, evaluated over the traces.
    let matrix = CostMatrix::from_traces(&traces, Reference::Peak)?;
    println!("pairwise costs (1 = peaks coincide, 2 = perfectly complementary):");
    for i in 0..4 {
        for j in (i + 1)..4 {
            let same = if fleet.vms()[i].group == fleet.vms()[j].group {
                "same group"
            } else {
                "different groups"
            };
            println!(
                "  cost(vm{i}, vm{j}) = {:.3}  [{same}]",
                matrix.cost(i, j).expect("matrix has samples")
            );
        }
    }

    // Correlation-aware placement onto 8-core servers.
    let vms = VmDescriptor::from_traces(&traces, Reference::Peak)?;
    let placement = ProposedPolicy::default().place_uniform(&vms, &matrix, 8.0)?;
    println!("\nplacement on {} servers:", placement.server_count());

    // Eqn 4: per-server frequency on the Xeon E5410 ladder.
    let planner = FrequencyPlanner::new(DvfsLadder::xeon_e5410());
    for (s, members) in placement.servers().iter().enumerate() {
        let demand: f64 = members.iter().map(|&id| vms[id].demand).sum();
        let cost = server_cost_of(members, &vms, &matrix);
        let f = planner.static_level_correlation_aware(demand, 8.0, cost.max(1.0))?;
        println!("  server{s}: vms {members:?}  Σû = {demand:.2} cores, cost = {cost:.2} → {f}");
    }
    Ok(())
}
