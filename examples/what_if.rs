//! "What if I re-packed right now?" — speculative questions against a
//! live datacenter session, answered on a fork.
//!
//! The controller is cheaply `Clone`-able end to end, so an operator
//! can snapshot the live session mid-period and run hypotheticals on
//! the copy without the live session ever noticing:
//!
//! 1. **The built-in question** — `live.what_if().repack()` runs a
//!    full off-cycle re-pack on a fork and returns the delta: servers
//!    freed, migrations it would cost, and an energy estimate for the
//!    remainder of the period.
//! 2. **Arbitrary suffixes** — `live.fork()` hands back a whole
//!    independent controller; feed it any event stream (here: a burst
//!    of hypothetical arrivals) to see how the fleet would absorb it.
//!
//! Both run against the same state the live session is in at the fork
//! instant, and the example proves isolation by hashing the live
//! session's debug state around every probe.
//!
//! Run with: `cargo run --release --example what_if`

use cavm::prelude::*;
use cavm::sim::service::lifecycle_events;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A day of churn over 12 VMs in 3 correlated groups.
    let fleet = DatacenterTraceBuilder::new(12)
        .groups(3)
        .seed(42)
        .duration_hours(8.0)
        .build()?;
    let horizon = fleet.vms()[0].fine.len();
    let lifecycle = LifecycleBuilder::new(12, horizon)
        .seed(43)
        .arrivals(ArrivalProcess::Poisson {
            mean_gap_samples: 240.0,
        })
        .lifetimes(LifetimeModel::Exponential {
            mean_samples: 2400.0,
        })
        .build()?;
    let scenario = ScenarioBuilder::new(fleet.clone())
        .servers(16)
        .policy(Policy::Proposed(Default::default()))
        .repack_trigger(RepackTrigger::Hybrid { slack: 1 })
        .lifecycle(lifecycle.clone())
        .build()?;
    let events = lifecycle_events(&fleet, &lifecycle, scenario.period_samples())?;

    // Replay the real session into the middle of the day.
    let mut live = scenario.controller()?;
    let k = events.len() * 5 / 8;
    for event in &events[..k] {
        live.apply(event.clone(), &mut NullSink)?;
    }
    println!(
        "live session at sample {}: {} VMs on {} active servers",
        live.clock(),
        live.live_vms(),
        live.placement().active_server_count(),
    );
    let state_before = format!("{live:?}");

    // ---- question 1: what would an off-cycle re-pack free right now?
    let delta = live.what_if().repack()?;
    println!(
        "what-if re-pack: {} -> {} servers ({} freed) for {} migrations, \
         ~{:.0} J saved over the rest of the period",
        delta.servers_before,
        delta.servers_after,
        delta.servers_freed,
        delta.migrations,
        delta.energy_estimate,
    );

    // ---- question 2: could we absorb a burst of 4 hot tenants?
    let mut burst = live.fork();
    let dt = fleet.vms()[0].fine.dt();
    let remaining = horizon - live.clock();
    for id in 100..104 {
        let trace = TimeSeries::from_fn(dt, remaining, |i| {
            2.0 + 0.5 * ((id + i) as f64 * 0.01).sin()
        })?;
        burst.apply(
            VmEvent::Arrive {
                id,
                trace,
                lease_samples: None,
            },
            &mut NullSink,
        )?;
    }
    println!(
        "burst of 4 hot tenants would need {} active servers (live session still has {})",
        burst.placement().active_server_count(),
        live.placement().active_server_count(),
    );

    // Neither probe touched the live session.
    assert_eq!(
        format!("{live:?}"),
        state_before,
        "probes leaked into live state"
    );
    println!("live session unchanged by both probes ✓");

    // The real session carries on as if nothing happened.
    for event in &events[k..] {
        live.apply(event.clone(), &mut NullSink)?;
    }
    live.finish(&mut NullSink)?;
    let report = live.report();
    println!(
        "day complete: {:.3e} J, worst period violation {:.2}%, {} off-cycle re-packs",
        report.energy.joules(),
        report.max_violation_percent,
        report.offcycle_repacks,
    );
    Ok(())
}
